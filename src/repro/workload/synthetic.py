"""The synthetic workload: 15 queries exercising RDFFrames' features.

Section 6.2 / Table 2 of the paper.  All queries run on the DBpedia-like
graph; Q4 and Q11 additionally join the YAGO-like graph.  Four queries use
only expand and filter (incl. optional predicates), four use grouping with
expand (one expands *after* grouping), and seven use joins (outer joins,
multiple joins, cross-graph joins, joins on grouped frames).

Each :class:`SyntheticQuery` carries the RDFFrames pipeline and an
expert-written SPARQL query; the benchmark harness derives the naive
variant via ``frame.to_sparql(strategy='naive')``.
"""

from __future__ import annotations

from typing import Callable, List

from ..core import (InnerJoin, KnowledgeGraph, LeftOuterJoin, OPTIONAL,
                    OuterJoin, RDFFrame, INCOMING)
from ..data import DBPEDIA_URI, YAGO_URI

_DBPEDIA = KnowledgeGraph(graph_uri=DBPEDIA_URI)
_YAGO = KnowledgeGraph(graph_uri=YAGO_URI)

_PREFIX_BLOCK = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dbpr: <http://dbpedia.org/resource/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX yago: <http://yago-knowledge.org/resource/>
"""


class SyntheticQuery:
    """One workload query: id, Table-2 description, pipeline, expert SPARQL."""

    def __init__(self, qid: str, description: str,
                 build: Callable[[], RDFFrame], expert_sparql: str):
        self.qid = qid
        self.description = description
        self.build = build
        self.expert_sparql = _PREFIX_BLOCK + expert_sparql

    def frame(self) -> RDFFrame:
        return self.build()

    def __repr__(self):
        return "SyntheticQuery(%s)" % self.qid


# ----------------------------------------------------------------------
# Expand/filter-only queries (Q1, Q5, Q6, Q8, Q13, Q14)
# ----------------------------------------------------------------------
def q1_frame() -> RDFFrame:
    return _DBPEDIA.entities("dbpo:BasketballPlayer", "player") \
        .expand("player", [("dbpp:nationality", "nationality"),
                           ("dbpp:birthPlace", "place"),
                           ("dbpo:birthDate", "birth_date"),
                           ("dbpp:team", "team")]) \
        .expand("team", [("dbpo:sponsor", "sponsor", OPTIONAL),
                         ("dbpp:name", "team_name", OPTIONAL),
                         ("dbpp:president", "president", OPTIONAL)])


Q1_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?player rdf:type dbpo:BasketballPlayer ;
            dbpp:nationality ?nationality ;
            dbpp:birthPlace ?place ;
            dbpo:birthDate ?birth_date ;
            dbpp:team ?team .
    OPTIONAL { ?team dbpo:sponsor ?sponsor }
    OPTIONAL { ?team dbpp:name ?team_name }
    OPTIONAL { ?team dbpp:president ?president }
}
"""


def q5_frame() -> RDFFrame:
    return _DBPEDIA.entities("dbpo:Film", "film") \
        .expand("film", [("dbpp:starring", "actor"),
                         ("dbpp:director", "director"),
                         ("dbpp:producer", "producer"),
                         ("dbpo:language", "language"),
                         ("dbpp:studio", "studio"),
                         ("dbpo:genre", "genre"),
                         ("dbpp:country", "country")]) \
        .filter({"country": ["In(dbpr:India, dbpr:United_States)"],
                 "studio": ["!=dbpr:Eskay_Movies"],
                 "genre": ["In(dbpr:Film_score, dbpr:Soundtrack, "
                           "dbpr:Rock_music, dbpr:House_music, dbpr:Dubstep)"]})


Q5_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?film rdf:type dbpo:Film ;
          dbpp:starring ?actor ;
          dbpp:director ?director ;
          dbpp:producer ?producer ;
          dbpo:language ?language ;
          dbpp:studio ?studio ;
          dbpo:genre ?genre ;
          dbpp:country ?country .
    FILTER ( ?country IN (dbpr:India, dbpr:United_States) )
    FILTER ( ?studio != dbpr:Eskay_Movies )
    FILTER ( ?genre IN (dbpr:Film_score, dbpr:Soundtrack, dbpr:Rock_music,
                        dbpr:House_music, dbpr:Dubstep) )
}
"""


def q6_frame() -> RDFFrame:
    return _DBPEDIA.entities("dbpo:BasketballPlayer", "player") \
        .expand("player", [("dbpp:nationality", "nationality"),
                           ("dbpp:birthPlace", "place"),
                           ("dbpo:birthDate", "birth_date"),
                           ("dbpp:team", "team")]) \
        .expand("team", [("dbpo:sponsor", "sponsor"),
                         ("dbpp:name", "team_name"),
                         ("dbpp:president", "president")])


Q6_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?player rdf:type dbpo:BasketballPlayer ;
            dbpp:nationality ?nationality ;
            dbpp:birthPlace ?place ;
            dbpo:birthDate ?birth_date ;
            dbpp:team ?team .
    ?team dbpo:sponsor ?sponsor ;
          dbpp:name ?team_name ;
          dbpp:president ?president .
}
"""


def q8_frame() -> RDFFrame:
    return _DBPEDIA.entities("dbpo:Film", "film") \
        .expand("film", [("dbpp:starring", "actor"),
                         ("dbpp:director", "director"),
                         ("dbpp:country", "country"),
                         ("dbpp:producer", "producer"),
                         ("dbpo:language", "language"),
                         ("rdfs:label", "title"),
                         ("dbpo:genre", "genre"),
                         ("dbpo:story", "story"),
                         ("dbpo:runtime", "runtime"),
                         ("dbpp:studio", "studio")]) \
        .filter({"country": ["In(dbpr:India, dbpr:United_States, dbpr:France)"],
                 "studio": ["!=dbpr:Eskay_Movies"],
                 "genre": ["In(dbpr:Drama, dbpr:Comedy, dbpr:Action, "
                           "dbpr:Film_score)"],
                 "runtime": [">=100"]})


Q8_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?film rdf:type dbpo:Film ;
          dbpp:starring ?actor ;
          dbpp:director ?director ;
          dbpp:country ?country ;
          dbpp:producer ?producer ;
          dbpo:language ?language ;
          rdfs:label ?title ;
          dbpo:genre ?genre ;
          dbpo:story ?story ;
          dbpo:runtime ?runtime ;
          dbpp:studio ?studio .
    FILTER ( ?country IN (dbpr:India, dbpr:United_States, dbpr:France) )
    FILTER ( ?studio != dbpr:Eskay_Movies )
    FILTER ( ?genre IN (dbpr:Drama, dbpr:Comedy, dbpr:Action, dbpr:Film_score) )
    FILTER ( ?runtime >= 100 )
}
"""


def q13_frame() -> RDFFrame:
    return _DBPEDIA.entities("dbpo:Film", "film") \
        .expand("film", [("dbpp:starring", "actor"),
                         ("dbpo:language", "language"),
                         ("dbpp:country", "country"),
                         ("dbpo:genre", "genre"),
                         ("dbpo:story", "story"),
                         ("dbpp:studio", "studio"),
                         ("dbpp:director", "director", OPTIONAL),
                         ("dbpp:producer", "producer", OPTIONAL),
                         ("rdfs:label", "title", OPTIONAL)])


Q13_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?film rdf:type dbpo:Film ;
          dbpp:starring ?actor ;
          dbpo:language ?language ;
          dbpp:country ?country ;
          dbpo:genre ?genre ;
          dbpo:story ?story ;
          dbpp:studio ?studio .
    OPTIONAL { ?film dbpp:director ?director }
    OPTIONAL { ?film dbpp:producer ?producer }
    OPTIONAL { ?film rdfs:label ?title }
}
"""


def q14_frame() -> RDFFrame:
    return _DBPEDIA.entities("dbpo:Film", "film") \
        .expand("film", [("dbpp:starring", "actor"),
                         ("dbpo:language", "language"),
                         ("dbpp:studio", "studio"),
                         ("dbpo:genre", "genre"),
                         ("dbpp:country", "country"),
                         ("dbpp:producer", "producer", OPTIONAL),
                         ("dbpp:director", "director", OPTIONAL),
                         ("rdfs:label", "title", OPTIONAL)]) \
        .filter({"country": ["In(dbpr:India, dbpr:United_States)"],
                 "studio": ["!=dbpr:Eskay_Movies"],
                 "genre": ["In(dbpr:Film_score, dbpr:Soundtrack, "
                           "dbpr:Rock_music, dbpr:House_music, dbpr:Dubstep)"]})


Q14_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?film rdf:type dbpo:Film ;
          dbpp:starring ?actor ;
          dbpo:language ?language ;
          dbpp:studio ?studio ;
          dbpo:genre ?genre ;
          dbpp:country ?country .
    OPTIONAL { ?film dbpp:producer ?producer }
    OPTIONAL { ?film dbpp:director ?director }
    OPTIONAL { ?film rdfs:label ?title }
    FILTER ( ?country IN (dbpr:India, dbpr:United_States) )
    FILTER ( ?studio != dbpr:Eskay_Movies )
    FILTER ( ?genre IN (dbpr:Film_score, dbpr:Soundtrack, dbpr:Rock_music,
                        dbpr:House_music, dbpr:Dubstep) )
}
"""


# ----------------------------------------------------------------------
# Grouping queries (Q2, Q3, Q7, Q10, Q12)
# ----------------------------------------------------------------------
def _player_team_counts():
    players = _DBPEDIA.entities("dbpo:BasketballPlayer", "player") \
        .expand("player", [("dbpp:team", "team")])
    return players, players.group_by(["team"]).count("player", "player_count")


def q2_frame() -> RDFFrame:
    _, counts = _player_team_counts()
    return counts.expand("team", [("dbpo:sponsor", "sponsor"),
                                  ("dbpp:name", "team_name"),
                                  ("dbpp:president", "president")])


Q2_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?team dbpo:sponsor ?sponsor ;
          dbpp:name ?team_name ;
          dbpp:president ?president .
    {
        SELECT ?team (COUNT(?player) AS ?player_count)
        WHERE {
            ?player rdf:type dbpo:BasketballPlayer ;
                    dbpp:team ?team .
        }
        GROUP BY ?team
    }
}
"""


def q3_frame() -> RDFFrame:
    _, counts = _player_team_counts()
    teams = _DBPEDIA.entities("dbpo:BasketballTeam", "team") \
        .expand("team", [("dbpo:sponsor", "sponsor"),
                         ("dbpp:name", "team_name"),
                         ("dbpp:president", "president")])
    return teams.join(counts, "team", LeftOuterJoin)


Q3_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?team rdf:type dbpo:BasketballTeam ;
          dbpo:sponsor ?sponsor ;
          dbpp:name ?team_name ;
          dbpp:president ?president .
    OPTIONAL {
        SELECT ?team (COUNT(?player) AS ?player_count)
        WHERE {
            ?player rdf:type dbpo:BasketballPlayer ;
                    dbpp:team ?team .
        }
        GROUP BY ?team
    }
}
"""


def q7_frame() -> RDFFrame:
    players, counts = _player_team_counts()
    return players.join(counts, "team", InnerJoin)


Q7_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?player rdf:type dbpo:BasketballPlayer ;
            dbpp:team ?team .
    {
        SELECT ?team (COUNT(?player) AS ?player_count)
        WHERE {
            ?player rdf:type dbpo:BasketballPlayer ;
                    dbpp:team ?team .
        }
        GROUP BY ?team
    }
}
"""


def q10_frame() -> RDFFrame:
    athletes = _DBPEDIA.entities("dbpo:Athlete", "athlete") \
        .expand("athlete", [("dbpp:birthPlace", "place")])
    counts = athletes.group_by(["place"]).count("athlete", "n_athletes")
    return athletes.join(counts, "place", InnerJoin)


Q10_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?athlete rdf:type dbpo:Athlete ;
             dbpp:birthPlace ?place .
    {
        SELECT ?place (COUNT(?athlete) AS ?n_athletes)
        WHERE {
            ?athlete rdf:type dbpo:Athlete ;
                     dbpp:birthPlace ?place .
        }
        GROUP BY ?place
    }
}
"""


def q12_frame() -> RDFFrame:
    athletes = _DBPEDIA.entities("dbpo:Athlete", "athlete") \
        .expand("athlete", [("dbpp:team", "team")])
    counts = athletes.group_by(["team"]).count("athlete", "n_athletes")
    return counts.expand("team", [("dbpp:name", "team_name")])


Q12_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?team dbpp:name ?team_name .
    {
        SELECT ?team (COUNT(?athlete) AS ?n_athletes)
        WHERE {
            ?athlete rdf:type dbpo:Athlete ;
                     dbpp:team ?team .
        }
        GROUP BY ?team
    }
}
"""


# ----------------------------------------------------------------------
# Join queries (Q4, Q9, Q11, Q15)
# ----------------------------------------------------------------------
def q4_frame() -> RDFFrame:
    dbp_actors = _DBPEDIA.entities("dbpo:Actor", "actor") \
        .expand("actor", [("dbpp:birthPlace", "country")]) \
        .filter({"country": ["=dbpr:United_States"]})
    yago_actors = _YAGO.entities("yago:Actor", "actor")
    return dbp_actors.join(yago_actors, "actor", InnerJoin)


Q4_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
FROM <http://yago-knowledge.org>
WHERE {
    GRAPH <http://dbpedia.org> {
        ?actor rdf:type dbpo:Actor ;
               dbpp:birthPlace ?country .
        FILTER ( ?country = dbpr:United_States )
    }
    GRAPH <http://yago-knowledge.org> {
        ?actor rdf:type yago:Actor .
    }
}
"""


def q9_frame() -> RDFFrame:
    films = _DBPEDIA.entities("dbpo:Film", "film") \
        .expand("film", [("dbpo:genre", "genre"),
                         ("dbpp:country", "country"),
                         ("dbpo:story", "story"),
                         ("dbpo:language", "language"),
                         ("dbpp:studio", "studio"),
                         ("rdfs:label", "title", OPTIONAL)])
    others = _DBPEDIA.entities("dbpo:Film", "film2") \
        .expand("film2", [("dbpo:genre", "genre"),
                          ("dbpp:country", "country")])
    return films.join(others, "genre", InnerJoin)


Q9_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?film rdf:type dbpo:Film ;
          dbpo:genre ?genre ;
          dbpp:country ?country ;
          dbpo:story ?story ;
          dbpo:language ?language ;
          dbpp:studio ?studio .
    OPTIONAL { ?film rdfs:label ?title }
    ?film2 rdf:type dbpo:Film ;
           dbpo:genre ?genre ;
           dbpp:country ?country .
}
"""


def q11_frame() -> RDFFrame:
    dbp_actors = _DBPEDIA.entities("dbpo:Actor", "actor")
    yago_actors = _YAGO.entities("yago:Actor", "actor")
    return dbp_actors.join(yago_actors, "actor", OuterJoin)


Q11_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
FROM <http://yago-knowledge.org>
WHERE {
    {
        SELECT *
        WHERE {
            { SELECT * WHERE {
                GRAPH <http://dbpedia.org> { ?actor rdf:type dbpo:Actor } } }
            OPTIONAL { SELECT * WHERE {
                GRAPH <http://yago-knowledge.org> { ?actor rdf:type yago:Actor } } }
        }
    }
    UNION
    {
        SELECT *
        WHERE {
            { SELECT * WHERE {
                GRAPH <http://yago-knowledge.org> { ?actor rdf:type yago:Actor } } }
            OPTIONAL { SELECT * WHERE {
                GRAPH <http://dbpedia.org> { ?actor rdf:type dbpo:Actor } } }
        }
    }
}
"""


def q15_frame() -> RDFFrame:
    prolific_authors = _DBPEDIA.entities("dbpo:Book", "book") \
        .expand("book", [("dbpo:author", "author")]) \
        .group_by(["author"]).count("book", "n_books") \
        .filter({"n_books": [">=3"]})
    american_books = _DBPEDIA \
        .seed("author", "dbpp:birthPlace", "birth_place") \
        .filter({"birth_place": ["=dbpr:United_States"]}) \
        .expand("author", [("dbpp:country", "country"),
                           ("dbpp:education", "education"),
                           ("dbpo:author", "book2", INCOMING)]) \
        .expand("book2", [("dbpp:title", "title"),
                          ("dcterms:subject", "subject"),
                          ("dbpp:country", "book_country", OPTIONAL),
                          ("dbpo:publisher", "publisher", OPTIONAL)])
    return american_books.join(prolific_authors, "author", InnerJoin)


Q15_EXPERT = """
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?author dbpp:birthPlace ?birth_place ;
            dbpp:country ?country ;
            dbpp:education ?education .
    FILTER ( ?birth_place = dbpr:United_States )
    ?book2 dbpo:author ?author ;
           dbpp:title ?title ;
           dcterms:subject ?subject .
    OPTIONAL { ?book2 dbpp:country ?book_country }
    OPTIONAL { ?book2 dbpo:publisher ?publisher }
    {
        SELECT ?author (COUNT(?book) AS ?n_books)
        WHERE {
            ?book rdf:type dbpo:Book ;
                  dbpo:author ?author .
        }
        GROUP BY ?author
        HAVING ( COUNT(?book) >= 3 )
    }
}
"""


SYNTHETIC_QUERIES: List[SyntheticQuery] = [
    SyntheticQuery("Q1", "Basketball players with nationality, birth place, "
                   "birth date; team sponsor/name/president if available.",
                   q1_frame, Q1_EXPERT),
    SyntheticQuery("Q2", "Basketball teams with sponsor, name, president, "
                   "and number of players.", q2_frame, Q2_EXPERT),
    SyntheticQuery("Q3", "Basketball teams with sponsor, name, president, "
                   "and number of players (if available).", q3_frame, Q3_EXPERT),
    SyntheticQuery("Q4", "American actors present in both DBpedia and YAGO.",
                   q4_frame, Q4_EXPERT),
    SyntheticQuery("Q5", "Films from Indian/US studios (excluding Eskay "
                   "Movies) in selected genres: actor, director, producer, "
                   "language.", q5_frame, Q5_EXPERT),
    SyntheticQuery("Q6", "Basketball players with nationality, birth place, "
                   "birth date, and team sponsor/name/president.",
                   q6_frame, Q6_EXPERT),
    SyntheticQuery("Q7", "Basketball players, their teams, and the number "
                   "of players per team.", q7_frame, Q7_EXPERT),
    SyntheticQuery("Q8", "Films with actor/director/country/producer/"
                   "language/title/genre/story/studio, filtered on country, "
                   "studio, genre, runtime.", q8_frame, Q8_EXPERT),
    SyntheticQuery("Q9", "Pairs of films sharing genre and production "
                   "country, with film attributes.", q9_frame, Q9_EXPERT),
    SyntheticQuery("Q10", "Athletes with birth place and the number of "
                   "athletes born in that place.", q10_frame, Q10_EXPERT),
    SyntheticQuery("Q11", "Actors present in DBpedia or YAGO (full outer "
                   "join).", q11_frame, Q11_EXPERT),
    SyntheticQuery("Q12", "Athletes per team: group by team, count, expand "
                   "team name.", q12_frame, Q12_EXPERT),
    SyntheticQuery("Q13", "Films with six mandatory attributes and optional "
                   "director/producer/title.", q13_frame, Q13_EXPERT),
    SyntheticQuery("Q14", "Filtered films (country/studio/genre) with actor "
                   "and language plus optional producer/director/title.",
                   q14_frame, Q14_EXPERT),
    SyntheticQuery("Q15", "Books by prolific American authors: author "
                   "attributes plus book title/subject and optional "
                   "country/publisher.", q15_frame, Q15_EXPERT),
]


def get_query(qid: str) -> SyntheticQuery:
    for query in SYNTHETIC_QUERIES:
        if query.qid == qid:
            return query
    raise KeyError("unknown query %r" % qid)
