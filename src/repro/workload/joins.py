"""The join corpus: star, cyclic, chain, and self-join query shapes.

The paper's workloads are join-heavy — star expansions around an entity,
self-joins, and chains feeding RDFFrame pipelines — but the Q1-Q15 set
exercises them only incidentally.  This module pins the missing shapes as
first-class queries over the DBpedia-like synthetic graph, so the join
subsystem (sideways information passing, multiway sorted-run
intersection) has a corpus to be measured and differential-tested on:

* **star** — one hub variable expanded through several predicates with
  partial coverage (``genre``/``producer`` are optional in the data), the
  shape where intersecting sorted runs prunes hubs before any fan-out is
  expanded;
* **cyclic** — triangle and 4-cycle shapes whose last variable is doubly
  constrained, the classic worst-case-optimal-join win case;
* **chain** — entity-to-entity hops through shared values, where the
  middle hop explodes under nested loops;
* **self-join** — the costar shape: a parity guard, since its output *is*
  the fan-out and no strategy can shrink it;
* **sip** — joins whose build side (a grouped subquery, the paper's
  bread-and-butter RDFFrames shape) is far smaller than the probe's
  scans, where semi-join filters prune the probe's leaves.

Each query records which mechanism is expected to engage
(``expect='multiway' | 'sip' | 'parity'``); the benchmark and the
differential suite assert the matching counters
(``intersect_steps``/``sip_filtered_rows``) where the planner chose the
strategy.
"""

from __future__ import annotations

from typing import List

_PREFIX_BLOCK = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dbpr: <http://dbpedia.org/resource/>
"""


class JoinQuery:
    """One join-corpus query: key, shape, expected mechanism, SPARQL."""

    def __init__(self, key: str, shape: str, expect: str,
                 description: str, body: str):
        self.key = key
        self.shape = shape            # 'star' | 'cyclic' | 'chain' | 'self'
        self.expect = expect          # 'multiway' | 'sip' | 'parity'
        self.description = description
        self.sparql = _PREFIX_BLOCK + body

    def __repr__(self):
        return "JoinQuery(%s, shape=%s, expect=%s)" % (
            self.key, self.shape, self.expect)


JOIN_QUERIES: List[JoinQuery] = [
    JoinQuery(
        "star_film_attrs", "star", "multiway",
        "4-leg star around films; genre/producer cover only part of the "
        "film population, so intersecting the predicate-subject runs "
        "prunes hubs before the starring fan-out is expanded.",
        """
        SELECT ?film ?genre ?producer ?actor WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpo:genre ?genre .
            ?film dbpp:producer ?producer .
            ?film dbpp:starring ?actor .
        }"""),
    JoinQuery(
        "triangle_costar_country", "cyclic", "multiway",
        "Triangle: films starring actors born in the film's country — "
        "the actor variable is constrained by both the film's cast run "
        "and the country's birthplace run.",
        """
        SELECT ?film ?actor ?country WHERE {
            ?film dbpp:country ?country .
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?country .
        }"""),
    JoinQuery(
        "cycle4_costars_same_birthplace", "cyclic", "multiway",
        "4-cycle: co-stars sharing a birthplace.  The second co-star is "
        "doubly constrained (the film's cast run and the place's "
        "birthplace run); the per-actor film step stays nested-loop "
        "because its only extra operand is the covering cast-presence "
        "run — the per-step gate prunes exactly that.",
        """
        SELECT ?a ?b ?place WHERE {
            ?film dbpp:starring ?a .
            ?a dbpp:birthPlace ?place .
            ?film dbpp:starring ?b .
            ?b dbpp:birthPlace ?place .
        }"""),
    JoinQuery(
        "chain_japan_costar_place_player", "chain", "multiway",
        "5-hop chain: Japanese films -> cast -> birthplace -> players "
        "born there -> their teams.  The birthplace hop fans out to "
        "every subject born in the place; intersecting with the team-"
        "presence run drops actors/authors before they become rows.",
        """
        SELECT ?film ?actor ?place ?player ?team WHERE {
            ?film dbpp:country dbpr:Japan .
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place .
            ?player dbpp:birthPlace ?place .
            ?player dbpp:team ?team .
        }"""),
    JoinQuery(
        "costar_self_join", "self", "parity",
        "The classic costar self-join: its output equals its fan-out, so "
        "no join strategy can shrink the work — a parity guard.",
        """
        SELECT ?a ?b WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        }"""),
    JoinQuery(
        "sip_egypt_star", "star", "sip",
        "Star probe behind a DISTINCT subquery of Egyptian-born actors: "
        "the build side's small actor id-set prunes the probe's starring "
        "scan to a few percent before the studio/country legs expand.",
        """
        SELECT ?actor ?film ?studio ?country WHERE {
            { SELECT DISTINCT ?actor WHERE {
                  ?actor dbpp:birthPlace dbpr:Egypt .
              } }
            ?film dbpp:starring ?actor .
            ?film dbpp:studio ?studio .
            ?film dbpp:country ?country .
        }"""),
    JoinQuery(
        "sip_egypt_costar", "self", "sip",
        "Costar fan-out behind the Egyptian-actor build side: the "
        "semi-join filter kills the self-join's quadratic expansion at "
        "the first leaf.",
        """
        SELECT ?a ?b WHERE {
            { SELECT DISTINCT ?a WHERE {
                  ?a dbpp:birthPlace dbpr:Egypt .
              } }
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        }"""),
    JoinQuery(
        "sip_japan_star", "star", "sip",
        "Star probe (starring, studio, country) behind a DISTINCT "
        "subquery of Japanese-born actors — a second geography, probing "
        "that the semi-join win is not tuned to one constant.",
        """
        SELECT ?actor ?film ?studio ?country WHERE {
            { SELECT DISTINCT ?actor WHERE {
                  ?actor dbpp:birthPlace dbpr:Japan .
              } }
            ?film dbpp:starring ?actor .
            ?film dbpp:studio ?studio .
            ?film dbpp:country ?country .
        }"""),
    JoinQuery(
        "sip_egypt_costar_places", "chain", "sip",
        "The heaviest probe: costar fan-out plus both actors' birthplace "
        "hops, all behind the Egyptian-actor semi-join filter — the "
        "full quadratic expansion never materializes.",
        """
        SELECT ?a ?b ?pa ?pb WHERE {
            { SELECT DISTINCT ?a WHERE {
                  ?a dbpp:birthPlace dbpr:Egypt .
              } }
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
            ?a dbpp:birthPlace ?pa .
            ?b dbpp:birthPlace ?pb .
        }"""),
    JoinQuery(
        "sip_chain_prolific", "chain", "sip",
        "Chain probe (film -> actor -> birthplace) behind a grouped "
        "subquery of prolific actors (the RDFFrames group-then-join "
        "shape): a *moderately* selective build side — Zipf-popular "
        "actors still cover most starring pairs — so this pins the "
        "realistic low end of the semi-join win.",
        """
        SELECT ?actor ?n ?film ?place WHERE {
            { SELECT ?actor (COUNT(?f) AS ?n) WHERE {
                  ?f dbpp:starring ?actor .
              } GROUP BY ?actor HAVING (COUNT(?f) >= 10) }
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place .
        }"""),
]


def get_join_query(key: str) -> JoinQuery:
    for query in JOIN_QUERIES:
        if query.key == key:
            return query
    raise KeyError("unknown join query %r (have: %s)" % (
        key, ", ".join(q.key for q in JOIN_QUERIES)))
