"""The join corpus: star, cyclic, chain, and self-join query shapes.

The paper's workloads are join-heavy — star expansions around an entity,
self-joins, and chains feeding RDFFrame pipelines — but the Q1-Q15 set
exercises them only incidentally.  This module pins the missing shapes as
first-class queries over the DBpedia-like synthetic graph, so the join
subsystem (sideways information passing, multiway sorted-run
intersection) has a corpus to be measured and differential-tested on:

* **star** — one hub variable expanded through several predicates with
  partial coverage (``genre``/``producer`` are optional in the data), the
  shape where intersecting sorted runs prunes hubs before any fan-out is
  expanded;
* **cyclic** — triangle, 4-cycle, diamond, and 5-clique shapes whose
  later variables are multiply constrained, the classic
  worst-case-optimal-join win case (the cost-based planner routes these
  through the generic-join executor);
* **chain** — entity-to-entity hops through shared values, where the
  middle hop explodes under nested loops;
* **self-join** — the costar shape: a parity guard, since its output *is*
  the fan-out and no strategy can shrink it;
* **sip** — joins whose build side (a grouped subquery, the paper's
  bread-and-butter RDFFrames shape) is far smaller than the probe's
  scans, where semi-join filters prune the probe's leaves.

Each query records which mechanism is expected to engage
(``expect='multiway' | 'wcoj' | 'sip' | 'parity'``); the benchmark and
the differential suite assert the matching counters
(``intersect_steps``/``wcoj_steps``/``sip_filtered_rows``) where the
planner chose the strategy.
"""

from __future__ import annotations

from typing import List

_PREFIX_BLOCK = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dbpr: <http://dbpedia.org/resource/>
"""


class JoinQuery:
    """One join-corpus query: key, shape, expected mechanism, SPARQL."""

    def __init__(self, key: str, shape: str, expect: str,
                 description: str, body: str):
        self.key = key
        self.shape = shape            # 'star' | 'cyclic' | 'chain' | 'self'
        self.expect = expect          # 'multiway' | 'wcoj' | 'sip' | 'parity'
        self.description = description
        self.sparql = _PREFIX_BLOCK + body

    def __repr__(self):
        return "JoinQuery(%s, shape=%s, expect=%s)" % (
            self.key, self.shape, self.expect)


JOIN_QUERIES: List[JoinQuery] = [
    JoinQuery(
        "star_film_attrs", "star", "multiway",
        "4-leg star around films; genre/producer cover only part of the "
        "film population, so intersecting the predicate-subject runs "
        "prunes hubs before the starring fan-out is expanded.",
        """
        SELECT ?film ?genre ?producer ?actor WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpo:genre ?genre .
            ?film dbpp:producer ?producer .
            ?film dbpp:starring ?actor .
        }"""),
    JoinQuery(
        "triangle_costar_country", "cyclic", "wcoj",
        "Triangle: films starring actors born in the film's country — "
        "the actor variable is constrained by both the film's cast run "
        "and the country's birthplace run.  Fan-outs here are tiny "
        "(~2 actors per film), so this pins generic join's *parity* on "
        "benign cyclic data, not its win.",
        """
        SELECT ?film ?actor ?country WHERE {
            ?film dbpp:country ?country .
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?country .
        }"""),
    JoinQuery(
        "cycle4_costars_same_birthplace", "cyclic", "wcoj",
        "4-cycle: co-stars sharing a birthplace.  Every variable after "
        "the first is doubly constrained along the cycle, so the "
        "generic-join executor binds each from the intersection of its "
        "two incident runs instead of expanding either side's fan-out.",
        """
        SELECT ?a ?b ?place WHERE {
            ?film dbpp:starring ?a .
            ?a dbpp:birthPlace ?place .
            ?film dbpp:starring ?b .
            ?b dbpp:birthPlace ?place .
        }"""),
    JoinQuery(
        "triangle_collaborators", "cyclic", "wcoj",
        "Triangle over the heavy-tailed collaborator graph.  Nested "
        "loops expand every two-hop wedge through the Zipf hubs "
        "(quadratic in hub degree) and reject almost all of them at the "
        "closing edge; generic join seeds the last level from the "
        "smaller adjacency run, so hubs never drive the fan-out.",
        """
        SELECT ?a ?b ?c WHERE {
            ?a dbpp:collaborator ?b .
            ?b dbpp:collaborator ?c .
            ?a dbpp:collaborator ?c .
        }"""),
    JoinQuery(
        "cycle4_collaborators", "cyclic", "wcoj",
        "4-cycle over the collaborator graph: wedge pairs around two "
        "opposite corners.  The generic join binds both neighbors of "
        "the first corner, then closes the cycle with one intersection "
        "per wedge instead of expanding the third hop's full adjacency.",
        """
        SELECT ?a ?b ?c ?d WHERE {
            ?a dbpp:collaborator ?b .
            ?b dbpp:collaborator ?c .
            ?c dbpp:collaborator ?d .
            ?d dbpp:collaborator ?a .
        }"""),
    JoinQuery(
        "diamond_collaborators", "cyclic", "wcoj",
        "Diamond (4-cycle plus a chord): the chord pins the two hub "
        "corners to actual edges, so generic join enumerates edges and "
        "intersects twice per edge, while pattern-at-a-time plans still "
        "pay the full wedge expansion before either cycle check.",
        """
        SELECT ?a ?b ?c ?d WHERE {
            ?a dbpp:collaborator ?b .
            ?b dbpp:collaborator ?c .
            ?c dbpp:collaborator ?d .
            ?d dbpp:collaborator ?a .
            ?a dbpp:collaborator ?c .
        }"""),
    JoinQuery(
        "clique5_collaborators", "cyclic", "wcoj",
        "5-clique over the symmetric collaborator graph: ten pairwise "
        "patterns; nested loops enumerate near-cliques and discard them "
        "edge by edge, while generic join caps every level at the "
        "narrowest incident adjacency run.",
        """
        SELECT ?a ?b ?c ?d ?e WHERE {
            ?a dbpp:collaborator ?b .
            ?a dbpp:collaborator ?c .
            ?a dbpp:collaborator ?d .
            ?a dbpp:collaborator ?e .
            ?b dbpp:collaborator ?c .
            ?b dbpp:collaborator ?d .
            ?b dbpp:collaborator ?e .
            ?c dbpp:collaborator ?d .
            ?c dbpp:collaborator ?e .
            ?d dbpp:collaborator ?e .
        }"""),
    JoinQuery(
        "chain_japan_costar_place_player", "chain", "multiway",
        "5-hop chain: Japanese films -> cast -> birthplace -> players "
        "born there -> their teams.  The birthplace hop fans out to "
        "every subject born in the place; intersecting with the team-"
        "presence run drops actors/authors before they become rows.",
        """
        SELECT ?film ?actor ?place ?player ?team WHERE {
            ?film dbpp:country dbpr:Japan .
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place .
            ?player dbpp:birthPlace ?place .
            ?player dbpp:team ?team .
        }"""),
    JoinQuery(
        "costar_self_join", "self", "parity",
        "The classic costar self-join: its output equals its fan-out, so "
        "no join strategy can shrink the work — a parity guard.",
        """
        SELECT ?a ?b WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        }"""),
    JoinQuery(
        "sip_egypt_star", "star", "sip",
        "Star probe behind a DISTINCT subquery of Egyptian-born actors: "
        "the build side's small actor id-set prunes the probe's starring "
        "scan to a few percent before the studio/country legs expand.",
        """
        SELECT ?actor ?film ?studio ?country WHERE {
            { SELECT DISTINCT ?actor WHERE {
                  ?actor dbpp:birthPlace dbpr:Egypt .
              } }
            ?film dbpp:starring ?actor .
            ?film dbpp:studio ?studio .
            ?film dbpp:country ?country .
        }"""),
    JoinQuery(
        "sip_egypt_costar", "self", "sip",
        "Costar fan-out behind the Egyptian-actor build side: the "
        "semi-join filter kills the self-join's quadratic expansion at "
        "the first leaf.",
        """
        SELECT ?a ?b WHERE {
            { SELECT DISTINCT ?a WHERE {
                  ?a dbpp:birthPlace dbpr:Egypt .
              } }
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        }"""),
    JoinQuery(
        "sip_japan_star", "star", "sip",
        "Star probe (starring, studio, country) behind a DISTINCT "
        "subquery of Japanese-born actors — a second geography, probing "
        "that the semi-join win is not tuned to one constant.",
        """
        SELECT ?actor ?film ?studio ?country WHERE {
            { SELECT DISTINCT ?actor WHERE {
                  ?actor dbpp:birthPlace dbpr:Japan .
              } }
            ?film dbpp:starring ?actor .
            ?film dbpp:studio ?studio .
            ?film dbpp:country ?country .
        }"""),
    JoinQuery(
        "sip_egypt_costar_places", "chain", "sip",
        "The heaviest probe: costar fan-out plus both actors' birthplace "
        "hops, all behind the Egyptian-actor semi-join filter — the "
        "full quadratic expansion never materializes.",
        """
        SELECT ?a ?b ?pa ?pb WHERE {
            { SELECT DISTINCT ?a WHERE {
                  ?a dbpp:birthPlace dbpr:Egypt .
              } }
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
            ?a dbpp:birthPlace ?pa .
            ?b dbpp:birthPlace ?pb .
        }"""),
    JoinQuery(
        "sip_chain_prolific", "chain", "sip",
        "Chain probe (film -> actor -> birthplace) behind a grouped "
        "subquery of prolific actors (the RDFFrames group-then-join "
        "shape): a *moderately* selective build side — Zipf-popular "
        "actors still cover most starring pairs — so this pins the "
        "realistic low end of the semi-join win.",
        """
        SELECT ?actor ?n ?film ?place WHERE {
            { SELECT ?actor (COUNT(?f) AS ?n) WHERE {
                  ?f dbpp:starring ?actor .
              } GROUP BY ?actor HAVING (COUNT(?f) >= 10) }
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place .
        }"""),
]


def get_join_query(key: str) -> JoinQuery:
    for query in JOIN_QUERIES:
        if query.key == key:
            return query
    raise KeyError("unknown join query %r (have: %s)" % (
        key, ", ".join(q.key for q in JOIN_QUERIES)))
