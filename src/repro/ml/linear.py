"""Multinomial logistic regression (the scikit-learn stand-in).

The movie-genre case study trains a classifier on the extracted dataframe;
this is a plain batch gradient-descent softmax regression on numpy arrays,
plus a small cross-validation helper mirroring ``cross_val_score``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class LogisticRegression:
    """Softmax regression trained by full-batch gradient descent."""

    def __init__(self, learning_rate: float = 0.5, n_iterations: int = 200,
                 l2: float = 1e-3, random_state: int = 0):
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self.bias_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: Sequence) -> "LogisticRegression":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        n_samples, n_features = features.shape
        n_classes = len(self.classes_)
        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), encoded] = 1.0

        rng = np.random.RandomState(self.random_state)
        weights = rng.normal(scale=0.01, size=(n_features, n_classes))
        bias = np.zeros(n_classes)
        for _ in range(self.n_iterations):
            probabilities = _softmax(features @ weights + bias)
            gradient = features.T @ (probabilities - one_hot) / n_samples
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
            bias -= self.learning_rate * (probabilities - one_hot).mean(axis=0)
        self.weights_, self.bias_ = weights, bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        return _softmax(np.asarray(features, dtype=float) @ self.weights_
                        + self.bias_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(features), axis=1)]

    def score(self, features: np.ndarray, labels: Sequence) -> float:
        return float(np.mean(self.predict(features) == np.asarray(labels)))


def cross_val_score(model_factory, features: np.ndarray, labels: Sequence,
                    cv: int = 5, random_state: int = 0) -> List[float]:
    """K-fold cross-validated accuracy (``sklearn.cross_val_score`` shape).

    ``model_factory`` is a zero-argument callable returning a fresh model.
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels)
    n_samples = len(labels)
    if n_samples < cv:
        raise ValueError("not enough samples (%d) for %d folds"
                         % (n_samples, cv))
    rng = np.random.RandomState(random_state)
    indices = rng.permutation(n_samples)
    folds = np.array_split(indices, cv)
    scores = []
    for fold in folds:
        mask = np.ones(n_samples, dtype=bool)
        mask[fold] = False
        model = model_factory()
        model.fit(features[mask], labels[mask])
        scores.append(model.score(features[fold], labels[fold]))
    return scores


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
