"""Text preprocessing and TF-IDF vectorization (the scikit-learn/nltk
stand-in used by the case studies).

The paper's case studies clean extracted text with nltk stopword removal
and vectorize with scikit-learn's ``TfidfVectorizer``; this module provides
equivalent functionality on numpy arrays.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: A compact English stopword list (the nltk subset that matters for titles).
STOPWORDS = frozenset("""
    a an and are as at be but by for from has have in is it its of on or
    that the this to was were will with we our you your they their i he she
    his her not no so than then too very can could should would into over
    under about after before between during each few more most other some
    such only own same s t don now d ll m o re ve y
""".split())

_TOKEN_RE = re.compile(r"[a-z][a-z0-9]+")


def clean_text(text: str) -> str:
    """Lowercase and strip everything but letters/digits (paper's regex)."""
    return re.sub(r"[^a-zA-Z0-9 ]", " ", str(text)).lower()


def tokenize(text: str, min_length: int = 2,
             stopwords=STOPWORDS) -> List[str]:
    """Clean, split, and remove stopwords."""
    return [token for token in _TOKEN_RE.findall(clean_text(text))
            if len(token) >= min_length and token not in stopwords]


class TfidfVectorizer:
    """TF-IDF vectorization of token lists into a dense numpy matrix.

    Parameters mirror the scikit-learn API used in the paper's appendix:
    ``max_features`` keeps the most frequent terms, ``min_df``/``max_df``
    prune rare/ubiquitous terms, ``sublinear_tf`` applies ``1 + log(tf)``.
    """

    def __init__(self, max_features: Optional[int] = 1000,
                 min_df: int = 1, max_df: float = 1.0,
                 sublinear_tf: bool = False):
        self.max_features = max_features
        self.min_df = min_df
        self.max_df = max_df
        self.sublinear_tf = sublinear_tf
        self.vocabulary_: Dict[str, int] = {}
        self.idf_: Optional[np.ndarray] = None

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        tokenized = [tokenize(doc) for doc in documents]
        n_docs = max(1, len(tokenized))
        document_frequency: Dict[str, int] = {}
        for tokens in tokenized:
            for term in set(tokens):
                document_frequency[term] = document_frequency.get(term, 0) + 1
        max_count = self.max_df * n_docs if self.max_df <= 1.0 else self.max_df
        eligible = [(term, df) for term, df in document_frequency.items()
                    if df >= self.min_df and df <= max_count]
        eligible.sort(key=lambda pair: (-pair[1], pair[0]))
        if self.max_features is not None:
            eligible = eligible[:self.max_features]
        self.vocabulary_ = {term: index
                            for index, (term, _) in enumerate(sorted(eligible))}
        idf = np.zeros(len(self.vocabulary_))
        for term, index in self.vocabulary_.items():
            idf[index] = math.log((1 + n_docs)
                                  / (1 + document_frequency[term])) + 1.0
        self.idf_ = idf
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        if self.idf_ is None:
            raise RuntimeError("vectorizer is not fitted")
        matrix = np.zeros((len(documents), len(self.vocabulary_)))
        for row, doc in enumerate(documents):
            counts: Dict[int, int] = {}
            for token in tokenize(doc):
                index = self.vocabulary_.get(token)
                if index is not None:
                    counts[index] = counts.get(index, 0) + 1
            for index, count in counts.items():
                tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
                matrix[row, index] = tf * self.idf_[index]
        # L2 normalization, as in scikit-learn's default.
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return matrix / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)

    def get_feature_names(self) -> List[str]:
        return [term for term, _ in sorted(self.vocabulary_.items(),
                                           key=lambda pair: pair[1])]
