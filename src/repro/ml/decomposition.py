"""Truncated SVD for topic modeling (the scikit-learn TruncatedSVD stand-in).

The topic-modeling case study factorizes the TF-IDF matrix of paper titles
and reads the top terms of each component as a topic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg


class TruncatedSVD:
    """Rank-``n_components`` SVD of a (documents x terms) matrix."""

    def __init__(self, n_components: int = 10, random_state: int = 0):
        self.n_components = n_components
        self.random_state = random_state
        self.components_: Optional[np.ndarray] = None
        self.singular_values_: Optional[np.ndarray] = None

    def fit(self, matrix: np.ndarray) -> "TruncatedSVD":
        matrix = np.asarray(matrix, dtype=float)
        k = min(self.n_components, min(matrix.shape) - 1) \
            if min(matrix.shape) > 1 else 1
        _, singular_values, vt = linalg.svd(matrix, full_matrices=False)
        self.singular_values_ = singular_values[:k]
        self.components_ = vt[:k]
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("SVD is not fitted")
        return np.asarray(matrix, dtype=float) @ self.components_.T

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


def top_terms_per_topic(svd: TruncatedSVD, feature_names: Sequence[str],
                        n_terms: int = 7) -> List[List[Tuple[str, float]]]:
    """The strongest terms of each SVD component (the 'topics')."""
    if svd.components_ is None:
        raise RuntimeError("SVD is not fitted")
    topics = []
    for component in svd.components_:
        order = np.argsort(-np.abs(component))[:n_terms]
        topics.append([(feature_names[i], float(component[i])) for i in order])
    return topics
