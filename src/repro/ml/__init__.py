"""A minimal ML stack (scikit-learn / nltk / ampligraph stand-ins)."""

from .text import STOPWORDS, TfidfVectorizer, clean_text, tokenize
from .linear import LogisticRegression, cross_val_score
from .decomposition import TruncatedSVD, top_terms_per_topic
from .embeddings import (TransE, evaluate_ranks, hits_at_n_score, mr_score,
                         mrr_score, train_test_split_no_unseen)

__all__ = [
    "clean_text", "tokenize", "STOPWORDS", "TfidfVectorizer",
    "LogisticRegression", "cross_val_score",
    "TruncatedSVD", "top_terms_per_topic",
    "TransE", "train_test_split_no_unseen", "evaluate_ranks",
    "mr_score", "mrr_score", "hits_at_n_score",
]
