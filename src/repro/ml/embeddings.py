"""Knowledge-graph embeddings (the ampligraph stand-in).

The KG-embedding case study extracts entity-to-entity triples and trains a
link-prediction model.  This module implements TransE and a ComplEx-style
bilinear model with margin/negative-sampling training on numpy, plus the
standard evaluation protocol (filtered ranks, MR/MRR/Hits@N) and the
``train_test_split_no_unseen`` helper the paper's appendix uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

Triple = Tuple[str, str, str]


def train_test_split_no_unseen(triples: Sequence[Triple], test_size: int,
                               seed: int = 0) -> Tuple[List[Triple], List[Triple]]:
    """Split triples so every test entity/relation also appears in training
    (ampligraph's ``train_test_split_no_unseen``)."""
    triples = list(triples)
    rng = np.random.RandomState(seed)
    order = rng.permutation(len(triples))
    entity_counts: Dict[str, int] = {}
    relation_counts: Dict[str, int] = {}
    for s, p, o in triples:
        entity_counts[s] = entity_counts.get(s, 0) + 1
        entity_counts[o] = entity_counts.get(o, 0) + 1
        relation_counts[p] = relation_counts.get(p, 0) + 1
    test: List[Triple] = []
    test_indexes = set()
    for index in order:
        if len(test) >= test_size:
            break
        s, p, o = triples[index]
        if (entity_counts[s] > 1 and entity_counts[o] > 1
                and relation_counts[p] > 1):
            test.append(triples[index])
            test_indexes.add(index)
            entity_counts[s] -= 1
            entity_counts[o] -= 1
            relation_counts[p] -= 1
    train = [t for i, t in enumerate(triples) if i not in test_indexes]
    return train, test


class _IndexedTriples:
    """Integer-encoded triples with entity/relation vocabularies."""

    def __init__(self, triples: Sequence[Triple]):
        entities: Dict[str, int] = {}
        relations: Dict[str, int] = {}
        rows = []
        for s, p, o in triples:
            rows.append((entities.setdefault(s, len(entities)),
                         relations.setdefault(p, len(relations)),
                         entities.setdefault(o, len(entities))))
        self.entities = entities
        self.relations = relations
        self.array = np.asarray(rows, dtype=np.int64)

    @property
    def n_entities(self) -> int:
        return len(self.entities)

    @property
    def n_relations(self) -> int:
        return len(self.relations)


class TransE:
    """TransE: score(s, p, o) = -|| e_s + r_p - e_o ||.

    Trained with margin ranking loss against uniformly sampled negatives
    (corrupting subject or object), mini-batch SGD.
    """

    def __init__(self, k: int = 32, epochs: int = 30, batch_size: int = 512,
                 learning_rate: float = 0.05, margin: float = 1.0,
                 seed: int = 0):
        self.k = k
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.margin = margin
        self.seed = seed
        self._index: Optional[_IndexedTriples] = None
        self.entity_embeddings: Optional[np.ndarray] = None
        self.relation_embeddings: Optional[np.ndarray] = None
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------
    def fit(self, triples: Sequence[Triple]) -> "TransE":
        index = _IndexedTriples(triples)
        self._index = index
        rng = np.random.RandomState(self.seed)
        bound = 6.0 / np.sqrt(self.k)
        entities = rng.uniform(-bound, bound, (index.n_entities, self.k))
        relations = rng.uniform(-bound, bound, (index.n_relations, self.k))
        relations /= np.linalg.norm(relations, axis=1, keepdims=True)
        data = index.array
        n = len(data)
        for _ in range(self.epochs):
            entities /= np.maximum(
                np.linalg.norm(entities, axis=1, keepdims=True), 1.0)
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = data[order[start:start + self.batch_size]]
                s, p, o = batch[:, 0], batch[:, 1], batch[:, 2]
                # Corrupt subject or object uniformly.
                corrupt_obj = rng.random_sample(len(batch)) < 0.5
                ns = s.copy()
                no = o.copy()
                random_entities = rng.randint(0, index.n_entities, len(batch))
                no[corrupt_obj] = random_entities[corrupt_obj]
                ns[~corrupt_obj] = random_entities[~corrupt_obj]

                pos = entities[s] + relations[p] - entities[o]
                neg = entities[ns] + relations[p] - entities[no]
                pos_distance = np.linalg.norm(pos, axis=1)
                neg_distance = np.linalg.norm(neg, axis=1)
                violating = self.margin + pos_distance - neg_distance > 0
                epoch_loss += float(np.sum(
                    np.maximum(0.0, self.margin + pos_distance - neg_distance)))
                if not violating.any():
                    continue
                v = violating
                grad_pos = pos[v] / np.maximum(pos_distance[v, None], 1e-9)
                grad_neg = neg[v] / np.maximum(neg_distance[v, None], 1e-9)
                lr = self.learning_rate
                np.add.at(entities, s[v], -lr * grad_pos)
                np.add.at(entities, o[v], lr * grad_pos)
                np.add.at(relations, p[v], -lr * (grad_pos - grad_neg))
                np.add.at(entities, ns[v], lr * grad_neg)
                np.add.at(entities, no[v], -lr * grad_neg)
            self.loss_history.append(epoch_loss / n)
        self.entity_embeddings = entities
        self.relation_embeddings = relations
        return self

    # ------------------------------------------------------------------
    def score(self, triples: Sequence[Triple]) -> np.ndarray:
        """Higher is better (negative distance)."""
        encoded = self._encode(triples)
        s, p, o = encoded[:, 0], encoded[:, 1], encoded[:, 2]
        diff = (self.entity_embeddings[s] + self.relation_embeddings[p]
                - self.entity_embeddings[o])
        return -np.linalg.norm(diff, axis=1)

    def _encode(self, triples: Sequence[Triple]) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("model is not fitted")
        rows = []
        for s, p, o in triples:
            try:
                rows.append((self._index.entities[s],
                             self._index.relations[p],
                             self._index.entities[o]))
            except KeyError as exc:
                raise KeyError("unseen entity/relation %s" % exc)
        return np.asarray(rows, dtype=np.int64)

    def rank_object(self, triple: Triple,
                    known: Optional[set] = None) -> int:
        """Filtered rank of the true object among all entities."""
        if self._index is None:
            raise RuntimeError("model is not fitted")
        s = self._index.entities[triple[0]]
        p = self._index.relations[triple[1]]
        o = self._index.entities[triple[2]]
        scores = -np.linalg.norm(
            self.entity_embeddings[s] + self.relation_embeddings[p]
            - self.entity_embeddings, axis=1)
        if known:
            inverse = {v: k for k, v in self._index.entities.items()}
            for candidate in range(len(scores)):
                if candidate != o and (triple[0], triple[1],
                                       inverse[candidate]) in known:
                    scores[candidate] = -np.inf
        return int(1 + np.sum(scores > scores[o]))


def evaluate_ranks(model: TransE, test: Sequence[Triple],
                   filter_triples: Optional[Sequence[Triple]] = None
                   ) -> np.ndarray:
    """Filtered object ranks for a test set."""
    known = set(filter_triples) if filter_triples else set()
    return np.asarray([model.rank_object(t, known) for t in test])


def mr_score(ranks: np.ndarray) -> float:
    return float(np.mean(ranks))


def mrr_score(ranks: np.ndarray) -> float:
    return float(np.mean(1.0 / np.asarray(ranks, dtype=float)))


def hits_at_n_score(ranks: np.ndarray, n: int = 10) -> float:
    return float(np.mean(np.asarray(ranks) <= n))
