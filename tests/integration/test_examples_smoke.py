"""Smoke tests: the runnable examples must actually run.

Each example is executed in-process (``runpy``) with stdout captured;
the assertions pin the load-bearing lines of its output, not timings.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_grouped_analytics_runs():
    out = run_example("grouped_analytics.py")
    # The pushed-down aggregation ran on the streaming plane ...
    assert "plan streaming: True" in out
    # ... and the single-pattern COUNT took the index-backed path:
    # groups came straight off the graph indexes, nothing was folded.
    assert "accumulator rows folded: 0" in out
    assert "Top 10 actors by movie count:" in out
    assert "Top 5 actors by average film runtime:" in out
