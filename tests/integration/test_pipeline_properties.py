"""Property-based testing of query generation over *random pipelines*.

Hypothesis builds arbitrary operator chains against the movie graph and
checks the system-level invariants of Sections 4-5:

1. the generated SPARQL always parses (translator validation holds),
2. exactly one query is generated per frame,
3. naive and optimized generation return identical result bags,
4. result columns cover the frame's description.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.client import EngineClient
from repro.core import INCOMING, InnerJoin, KnowledgeGraph, LeftOuterJoin, OPTIONAL
from repro.rdf import DBPO, DBPP, DBPR, Graph, Literal, RDF, RDFS
from repro.sparql import Engine, parse


def build_graph():
    g = Graph("http://dbpedia.org")
    for m in range(12):
        movie = DBPR["M%d" % m]
        g.add(movie, RDF.type, DBPO.Film)
        g.add(movie, DBPP.starring, DBPR["A%d" % (m % 5)])
        if m % 2 == 0:
            g.add(movie, DBPP.starring, DBPR["A%d" % ((m + 1) % 5)])
        g.add(movie, RDFS.label, Literal("Movie %d" % m))
        if m % 3 == 0:
            g.add(movie, DBPO.genre, DBPR["G%d" % (m % 2)])
        g.add(movie, DBPO.runtime, Literal(80 + m))
    for a in range(5):
        actor = DBPR["A%d" % a]
        g.add(actor, DBPP.birthPlace,
              DBPR.United_States if a % 2 == 0 else DBPR.France)
        g.add(actor, RDFS.label, Literal("Actor %d" % a))
    return g


ENGINE = Engine(build_graph())
CLIENT = EngineClient(ENGINE)
KG = KnowledgeGraph(graph_uri="http://dbpedia.org")

# Steps applicable to a frame with columns (movie, actor).
_EXPANDS = [
    lambda f: f.expand("actor", [("dbpp:birthPlace", "country")]),
    lambda f: f.expand("actor", [("rdfs:label", "actor_name")]),
    lambda f: f.expand("movie", [("rdfs:label", "movie_name")]),
    lambda f: f.expand("movie", [("dbpo:genre", "genre", OPTIONAL)]),
    lambda f: f.expand("movie", [("dbpo:runtime", "runtime")]),
]
_FILTERS = [
    lambda f: f.filter({"actor": ["isURI"]}),
    lambda f: f.filter({"movie": ["!=dbpr:M0"]}),
]
_TERMINALS = [
    lambda f: f,
    lambda f: f.group_by(["actor"]).count("movie", "n"),
    lambda f: f.group_by(["actor"]).count("movie", "n").filter({"n": [">=1"]}),
    lambda f: f.group_by(["actor"]).count("movie", "n")
        .expand("actor", [("dbpp:birthPlace", "country")]),
    # Sort on the unique (movie, actor) composite so LIMIT is deterministic
    # (LIMIT after a sort with ties is nondeterministic in SPARQL too).
    lambda f: f.sort([("movie", "asc"), ("actor", "asc")]).head(8),
    lambda f: f.select_cols(["movie", "actor"]),
    lambda f: f.join(KG.seed("actor", "dbpp:birthPlace", "country"),
                     "actor", InnerJoin),
    lambda f: f.join(KG.seed("actor", "rdfs:label", "actor_label"),
                     "actor", LeftOuterJoin),
    lambda f: f.join(
        KG.feature_domain_range("dbpp:starring", "movie", "actor")
          .group_by(["actor"]).count("movie", "n2"),
        "actor", InnerJoin),
]

pipeline_strategy = st.tuples(
    st.lists(st.sampled_from(_EXPANDS + _FILTERS), max_size=4),
    st.sampled_from(_TERMINALS),
)


def build_frame(spec):
    steps, terminal = spec
    frame = KG.feature_domain_range("dbpp:starring", "movie", "actor")
    for step in steps:
        frame = step(frame)
    return terminal(frame)


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pipeline_strategy)
def test_generated_sparql_always_parses(spec):
    frame = build_frame(spec)
    parse(frame.to_sparql())
    parse(frame.to_sparql(strategy="naive"))


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pipeline_strategy)
def test_naive_equals_optimized_on_random_pipelines(spec):
    frame = build_frame(spec)
    optimized = frame.execute(CLIENT)
    naive = frame.execute(CLIENT, strategy="naive")
    assert optimized.equals_bag(naive)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pipeline_strategy)
def test_one_query_per_frame(spec):
    frame = build_frame(spec)
    before = ENGINE.queries_executed
    frame.execute(CLIENT)
    assert ENGINE.queries_executed == before + 1


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pipeline_strategy)
def test_result_columns_match_frame_description(spec):
    frame = build_frame(spec)
    df = frame.execute(CLIENT)
    if len(df) == 0:
        return
    # Every column the frame describes appears in the result.
    for column in frame.columns:
        assert column in df.columns
