"""Smoke tests for the standalone figure harness."""

import io

import pytest

from repro.harness import Harness, main


@pytest.fixture(scope="module")
def harness():
    return Harness(scale=0.05, rounds=1, out=io.StringIO())


class TestHarness:
    def test_figure3_prints_all_cases(self, harness):
        harness.figure3()
        text = harness.out.getvalue()
        for case in ("movie_genre", "topic_modeling", "kg_embedding"):
            assert case in text
        assert "naive" in text and "rdfframes" in text

    def test_figure4_prints_all_strategies(self, harness):
        harness.figure4()
        text = harness.out.getvalue()
        assert "rdflib_pandas" in text and "expert" in text

    def test_figure5_prints_all_queries(self, harness):
        harness.figure5()
        text = harness.out.getvalue()
        for qid in ("Q1", "Q9", "Q15"):
            assert qid in text
        assert "RDFFrames/x" in text

    def test_main_argument_validation(self):
        with pytest.raises(SystemExit):
            main(["--figure", "fig99"])
