"""Internationalized data must survive the whole stack: graph -> SPARQL
engine -> JSON wire format -> client -> dataframe -> CSV."""

import io

import pytest

from repro.client import HttpClient
from repro.core import KnowledgeGraph
from repro.dataframe import DataFrame
from repro.rdf import Graph, Literal, URIRef, ntriples, turtle
from repro.sparql import Endpoint, Engine

LABELS = [
    ("e1", "Café Müller", "de"),
    ("e2", "東京物語", "ja"),
    ("e3", "Фильм «Зеркало»", "ru"),
    ("e4", 'quotes "and" commas, too', None),
    ("e5", "emoji \U0001F3AC clap", None),
]


@pytest.fixture(scope="module")
def engine():
    g = Graph("http://g")
    for name, label, lang in LABELS:
        g.add(URIRef("http://x/" + name),
              URIRef("http://x/label"),
              Literal(label, language=lang))
    return Engine(g)


def test_unicode_through_http_stack(engine):
    kg = KnowledgeGraph(graph_uri="http://g", prefixes={"x": "http://x/"})
    client = HttpClient(Endpoint(engine, max_rows=2))  # force pagination
    df = kg.seed("entity", "x:label", "label").execute(client)
    assert sorted(df.column("label")) == sorted(l for _, l, _ in LABELS)


def test_unicode_through_csv(engine):
    kg = KnowledgeGraph(graph_uri="http://g", prefixes={"x": "http://x/"})
    client = HttpClient(Endpoint(engine, max_rows=100))
    df = kg.seed("entity", "x:label", "label").execute(client)
    back = DataFrame.read_csv(io.StringIO(df.to_csv()))
    assert back.equals_bag(df)


def test_unicode_through_ntriples(engine):
    graph = engine.dataset.graph("http://g")
    text = ntriples.serialize(graph.triples())
    g2 = Graph()
    ntriples.parse_into_graph(text, g2)
    assert set(g2.triples()) == set(graph.triples())


def test_unicode_through_turtle(engine):
    graph = engine.dataset.graph("http://g")
    text = turtle.serialize(graph.triples())
    g2 = Graph()
    turtle.parse_into_graph(text, g2)
    assert set(g2.triples()) == set(graph.triples())


def test_language_tags_preserved_over_wire(engine):
    from repro.sparql.json_results import decode_results, encode_results
    result = engine.query(
        "PREFIX x: <http://x/>\nSELECT ?l WHERE { ?e x:label ?l }")
    decoded = decode_results(encode_results(result))
    languages = {term.language for (term,) in decoded.rows}
    assert {"de", "ja", "ru", None} <= languages
