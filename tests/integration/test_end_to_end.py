"""End-to-end integration tests: full pipelines over the HTTP path.

These exercise the complete stack the paper describes: RDFFrames API ->
query generation -> SPARQL text -> simulated endpoint (JSON + pagination)
-> paginating client -> dataframe -> downstream ML.
"""

import pytest

from repro.client import EngineClient, FlakyEndpoint, HttpClient
from repro.core import KnowledgeGraph, OPTIONAL
from repro.data import DBLP_URI, DBPEDIA_URI, build_dataset
from repro.sparql import Endpoint, Engine


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale=0.1)


@pytest.fixture(scope="module")
def engine(dataset):
    return Engine(dataset)


class TestHttpPipeline:
    def test_pagination_transparent_to_user(self, engine):
        """A query whose result far exceeds the endpoint page cap returns
        one complete dataframe (Section 4.3)."""
        endpoint = Endpoint(engine, max_rows=100)
        client = HttpClient(endpoint)
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        df = kg.entities("dbpo:Film", "film") \
            .expand("film", [("rdfs:label", "title")]).execute(client)
        assert len(df) > 100
        assert client.pages_fetched == -(-len(df) // 100)  # ceil division

    def test_http_equals_direct_execution(self, engine):
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("movie", [("dbpo:genre", "genre", OPTIONAL)]) \
            .group_by(["genre"]).count("movie", "n")
        direct = frame.execute(EngineClient(engine))
        http = frame.execute(HttpClient(Endpoint(engine, max_rows=7)))
        assert direct.equals_bag(http)

    def test_flaky_endpoint_recovers(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=1, max_rows=50)
        client = HttpClient(endpoint, max_retries=2)
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        df = kg.entities("dbpo:Actor", "actor").execute(client)
        assert len(df) > 0

    def test_multi_graph_query_over_http(self, engine):
        from repro.core import InnerJoin
        dbpedia = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        yago = KnowledgeGraph(graph_uri="http://yago-knowledge.org")
        frame = dbpedia.entities("dbpo:Actor", "actor") \
            .join(yago.entities("yago:Actor", "actor"), "actor", InnerJoin)
        df = frame.execute(HttpClient(Endpoint(engine, max_rows=25)))
        assert len(df) > 0


class TestExplorationOperators:
    """The paper's exploration operators, end to end."""

    def test_classes_and_freq(self, engine):
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        df = kg.classes_and_freq().execute(EngineClient(engine))
        by_class = dict(df.to_records())
        assert by_class["http://dbpedia.org/ontology/Film"] > 0
        assert by_class["http://dbpedia.org/ontology/Actor"] > 0

    def test_predicates_and_freq(self, engine):
        kg = KnowledgeGraph(graph_uri=DBLP_URI)
        df = kg.predicates_and_freq().execute(EngineClient(engine))
        by_predicate = dict(df.to_records())
        assert by_predicate["http://purl.org/dc/elements/1.1/creator"] > 0

    def test_num_entities(self, engine):
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        df = kg.num_entities("dbpo:BasketballTeam").execute(
            EngineClient(engine))
        assert len(df) == 1
        assert df.column("count")[0] == 8

    def test_features_exploration(self, engine):
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        frame = kg.features("dbpo:BasketballTeam").head(200)
        df = frame.execute(EngineClient(engine))
        predicates = set(df.column("feature"))
        assert "http://dbpedia.org/property/name" in predicates


class TestDataframeHandoff:
    """Extracted dataframes feed the ML stack directly (the PyData story)."""

    def test_dataframe_to_numpy_features(self, engine):
        import numpy as np
        from repro.ml import TfidfVectorizer
        kg = KnowledgeGraph(graph_uri=DBLP_URI)
        df = kg.entities("swrc:InProceedings", "paper") \
            .expand("paper", [("dc:title", "title")]).head(100) \
            .execute(EngineClient(engine))
        matrix = TfidfVectorizer(max_features=50).fit_transform(
            [str(t) for t in df.column("title")])
        assert isinstance(matrix, np.ndarray)
        assert matrix.shape[0] == len(df)

    def test_csv_round_trip_of_results(self, engine, tmp_path):
        from repro.dataframe import DataFrame
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        df = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .head(50).execute(EngineClient(engine))
        path = str(tmp_path / "movies.csv")
        df.to_csv(path)
        assert DataFrame.read_csv(path).equals_bag(df)


class TestSortHeadEndToEnd:
    def test_sort_then_head(self, engine):
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        df = kg.entities("dbpo:Athlete", "athlete") \
            .expand("athlete", [("dbpp:birthPlace", "place")]) \
            .group_by(["place"]).count("athlete", "n") \
            .sort({"n": "desc"}).head(3) \
            .execute(EngineClient(engine))
        assert len(df) == 3
        counts = df.column("n")
        assert counts == sorted(counts, reverse=True)

    def test_head_offset_windows_are_disjoint(self, engine):
        kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
        base = kg.entities("dbpo:Film", "film").sort({"film": "asc"})
        first = base.head(5).execute(EngineClient(engine))
        second = base.head(5, 5).execute(EngineClient(engine))
        assert not set(first.column("film")) & set(second.column("film"))
