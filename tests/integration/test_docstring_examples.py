"""The public-API docstring examples must actually run.

The docs/*.md snippets are collected by pytest's ``--doctest-glob``
directly; the examples embedded in docstrings of the public API surface
(engine, clients, RDFFrame, KnowledgeGraph) are exercised here so they
cannot rot either.
"""

import doctest

import pytest

import repro.client.clients
import repro.core.knowledge_graph
import repro.core.rdfframe
import repro.sparql.engine
import repro.sparql.plan

MODULES = [
    repro.client.clients,
    repro.core.knowledge_graph,
    repro.core.rdfframe,
    repro.sparql.engine,
    repro.sparql.plan,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_docstring_examples_run(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0
    assert result.failed == 0
