"""Shared fixtures: a small synthetic dataset + clients for workload tests."""

import pytest

from repro.client import EngineClient
from repro.data import build_dataset
from repro.sparql import Engine

SCALE = 0.1


@pytest.fixture(scope="session")
def dataset():
    return build_dataset(scale=SCALE)


@pytest.fixture(scope="session")
def engine(dataset):
    return Engine(dataset)


@pytest.fixture(scope="session")
def client(engine):
    return EngineClient(engine)
