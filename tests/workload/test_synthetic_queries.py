"""The 15-query synthetic workload: equivalence and feature coverage."""

import pytest

from repro.workload import SYNTHETIC_QUERIES, get_query

QIDS = [q.qid for q in SYNTHETIC_QUERIES]


@pytest.fixture(params=QIDS)
def query(request):
    return get_query(request.param)


class TestWorkloadDefinition:
    def test_fifteen_queries(self):
        assert len(SYNTHETIC_QUERIES) == 15
        assert QIDS == ["Q%d" % i for i in range(1, 16)]

    def test_descriptions_match_table2(self):
        assert "nationality" in get_query("Q1").description
        assert "both DBpedia and YAGO" in get_query("Q4").description
        assert "full outer" in get_query("Q11").description.lower()

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            get_query("Q99")

    def test_feature_mix_matches_paper(self):
        """Four expand/filter-only queries, four grouping queries, seven
        join queries (Section 6.2)."""
        from repro.core.operators import (GroupByOperator, JoinOperator)

        def has(frame, kind):
            def walk(f):
                for op in f.operators:
                    if isinstance(op, kind):
                        return True
                    if isinstance(op, JoinOperator) and kind is not JoinOperator:
                        if walk(op.other):
                            return True
                return False
            return walk(frame)

        joins = [q.qid for q in SYNTHETIC_QUERIES
                 if has(q.frame(), JoinOperator)]
        groups = [q.qid for q in SYNTHETIC_QUERIES
                  if has(q.frame(), GroupByOperator)]
        assert len(joins) == 7
        assert set(groups) >= {"Q2", "Q3", "Q7", "Q10", "Q12", "Q15"}
        expand_filter_only = [q.qid for q in SYNTHETIC_QUERIES
                              if q.qid not in joins and q.qid not in groups]
        assert len(expand_filter_only) >= 4

    def test_cross_graph_queries_use_two_graphs(self):
        for qid in ("Q4", "Q11"):
            text = get_query(qid).frame().to_sparql()
            assert "http://yago-knowledge.org" in text
            assert "http://dbpedia.org" in text


class TestEquivalence:
    def test_rdfframes_equals_expert(self, query, client):
        df = query.frame().execute(client)
        expert = client.execute(query.expert_sparql)
        assert df.equals_bag(expert), query.qid

    def test_rdfframes_equals_naive(self, query, client):
        frame = query.frame()
        assert frame.execute(client).equals_bag(
            frame.execute(client, strategy="naive")), query.qid

    def test_results_non_empty(self, query, client):
        assert len(query.frame().execute(client)) > 0, query.qid


class TestGeneratedQueriesAreValid:
    def test_optimized_parses(self, query):
        from repro.sparql import parse
        parse(query.frame().to_sparql())

    def test_naive_parses(self, query):
        from repro.sparql import parse
        parse(query.frame().to_sparql(strategy="naive"))

    def test_naive_has_more_nesting(self, query):
        from repro.sparql import count_nested_selects, parse
        optimized = parse(query.frame().to_sparql())
        naive = parse(query.frame().to_sparql(strategy="naive"))
        assert count_nested_selects(naive.pattern) >= \
            count_nested_selects(optimized.pattern), query.qid
