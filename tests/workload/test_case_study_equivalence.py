"""Case-study equivalence: optimized == naive == expert for Listings 3-8.

The paper: "We verify that the results of all alternatives are identical."
"""

import pytest

from repro.workload import CASE_STUDIES, get_case_study


@pytest.fixture(params=[cs.key for cs in CASE_STUDIES])
def case_study(request):
    return get_case_study(request.param)


class TestEquivalence:
    def test_optimized_equals_expert(self, case_study, client):
        frame = case_study.frame()
        optimized = frame.execute(client)
        expert = client.execute(case_study.expert_sparql)
        assert optimized.equals_bag(expert)

    def test_optimized_equals_naive(self, case_study, client):
        frame = case_study.frame()
        optimized = frame.execute(client)
        naive = frame.execute(client, strategy="naive")
        assert optimized.equals_bag(naive)

    def test_results_non_empty(self, case_study, client):
        assert len(case_study.frame().execute(client)) > 0


class TestQueriesLookLikeThePaper:
    def test_movie_genre_generated_query_shape(self):
        """The generated query should have Listing 4's structure."""
        frame = get_case_study("movie_genre").frame()
        text = frame.to_sparql()
        assert "UNION" in text
        assert text.count("OPTIONAL") >= 4  # genre x3 + union optionals
        assert "HAVING ( COUNT(DISTINCT ?movie) >= 20 )" in text
        assert "?movie dbpp:starring ?actor ." in text

    def test_topic_modeling_generated_query_shape(self):
        """The generated query should have Listing 6's structure: the
        grouped author subquery inside the outer paper pattern."""
        frame = get_case_study("topic_modeling").frame()
        text = frame.to_sparql()
        assert text.count("SELECT") == 2
        assert "GROUP BY ?author" in text
        assert "SELECT ?title" in text.splitlines()[6] or \
            "SELECT ?title" in text
        assert "IN (dblprc:vldb, dblprc:sigmod)" in text

    def test_kg_embedding_generated_query_shape(self):
        """Listing 8: one triple pattern plus isIRI filter."""
        frame = get_case_study("kg_embedding").frame()
        text = frame.to_sparql()
        assert "?s ?p ?o ." in text
        assert "FILTER ( isIRI(?o) )" in text
        assert text.count("SELECT") == 1

    def test_rdfframes_code_is_shorter_than_sparql(self):
        """The paper's usability claim: the RDFFrames pipeline is far more
        compact than the equivalent SPARQL."""
        case = get_case_study("movie_genre")
        generated = case.frame().to_sparql()
        assert len(generated.splitlines()) > 30  # SPARQL is long...
        assert len(case.frame().operators) <= 12  # ...the API calls are few


class TestCaseStudyRegistry:
    def test_three_case_studies(self):
        assert len(CASE_STUDIES) == 3

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_case_study("nope")

    def test_metadata_complete(self):
        for case in CASE_STUDIES:
            assert case.title and case.description and case.graph_uri
