"""Chaos differential suite: case studies under injected endpoint faults.

The acceptance bar for the serving tier: under transient failures,
corrupted pages, and mid-stream timeouts, every case-study query must
return results *bag-identical* to the undisturbed engine, or fail with a
classified error — never a silently truncated result.  Fault schedules
are seeded, so every run (under any ``PYTHONHASHSEED``) replays the same
faults.
"""

import pytest

from repro.client import ClientError, EngineClient, HttpClient
from repro.sparql import (Endpoint, FaultyEndpoint, MidStreamTimeouts,
                          PayloadCorruption, ResultCache, TransientError,
                          TransientFaults)
from repro.workload import CASE_STUDIES, get_case_study

#: Per-page retry budget; generous relative to the injectors' streak caps
#: so the seeded schedules below always converge.
MAX_RETRIES = 10


def chaos_layers(seed):
    """The standard chaos mix: blips, damaged pages, tripped budgets."""
    return [
        TransientFaults(rate=0.3, seed=seed, max_consecutive=2),
        PayloadCorruption(rate=0.3, seed=seed + 1, max_consecutive=2),
        MidStreamTimeouts(rate=0.2, seed=seed + 2, max_consecutive=2),
    ]


def chaos_client(engine, seed, max_rows=50):
    faulty = FaultyEndpoint(Endpoint(engine, max_rows=max_rows),
                            chaos_layers(seed))
    return HttpClient(faulty, max_retries=MAX_RETRIES,
                      breaker_threshold=None), faulty


@pytest.fixture(params=[cs.key for cs in CASE_STUDIES])
def case_study(request):
    return get_case_study(request.param)


class TestBagIdenticalUnderFaults:
    def test_expert_sparql_survives_chaos(self, case_study, engine, client):
        undisturbed = client.execute(case_study.expert_sparql)
        chaos, faulty = chaos_client(engine, seed=17)
        survived = chaos.execute(case_study.expert_sparql)
        assert survived.equals_bag(undisturbed)
        # The run was not a free pass: faults actually fired and were
        # absorbed by classified retries.
        assert sum(faulty.faults_injected.values()) > 0
        assert chaos.retries_performed > 0

    def test_rdfframes_pipeline_survives_chaos(self, engine, client):
        frame = get_case_study("movie_genre").frame()
        undisturbed = frame.execute(client)
        chaos, faulty = chaos_client(engine, seed=29)
        survived = frame.execute(chaos)
        assert survived.equals_bag(undisturbed)
        assert sum(faulty.faults_injected.values()) > 0


class TestChaosDeterminism:
    def test_same_seed_replays_the_same_run(self, engine):
        query = get_case_study("kg_embedding").expert_sparql
        runs = []
        for _ in range(2):
            chaos, faulty = chaos_client(engine, seed=41)
            result = chaos.execute(query)
            runs.append((len(result), chaos.retries_performed,
                         chaos.pages_fetched, faulty.faults_injected,
                         faulty.requests_seen))
        assert runs[0] == runs[1]


class TestUnrecoverableFaults:
    def test_hard_down_endpoint_fails_classified(self, engine, client):
        query = get_case_study("topic_modeling").expert_sparql
        # rate=1.0 with no streak cap: every attempt faults; retries
        # cannot converge.  The failure must be classified, chained, and
        # total — not a partial result.
        faulty = FaultyEndpoint(Endpoint(engine, max_rows=50),
                                [TransientFaults(rate=1.0, seed=5)])
        chaos = HttpClient(faulty, max_retries=3, breaker_threshold=None)
        with pytest.raises(ClientError) as excinfo:
            chaos.execute(query)
        assert isinstance(excinfo.value.__cause__, TransientError)

    def test_all_pages_corrupted_never_truncates(self, engine, client):
        # Every serve of every page is damaged: the client must keep
        # refusing the pages, not accept a truncated decode.
        query = get_case_study("kg_embedding").expert_sparql
        faulty = FaultyEndpoint(Endpoint(engine, max_rows=50),
                                [PayloadCorruption(rate=1.0, seed=5)])
        chaos = HttpClient(faulty, max_retries=2, breaker_threshold=None)
        with pytest.raises(ClientError) as excinfo:
            chaos.execute(query)
        assert isinstance(excinfo.value.__cause__, TransientError)

    def test_capped_corruption_is_fully_absorbed(self, engine, client):
        # With a streak cap of 1 every page succeeds by the second serve;
        # results must be complete despite 100% first-serve corruption.
        query = get_case_study("kg_embedding").expert_sparql
        undisturbed = client.execute(query)
        faulty = FaultyEndpoint(
            Endpoint(engine, max_rows=50),
            [PayloadCorruption(rate=1.0, seed=5, max_consecutive=1)])
        chaos = HttpClient(faulty, max_retries=2, breaker_threshold=None)
        assert chaos.execute(query).equals_bag(undisturbed)
        assert chaos.retries_performed == chaos.pages_fetched


class TestCacheChaosInterplay:
    def test_cache_chaos_stays_bag_identical(self, engine, client):
        """The full chaos mix over a result-cached endpoint: both the
        cold pass (cache filling under faults) and the warm pass (pages
        sliced from the cache, faults still firing on the wire) must be
        bag-identical to the undisturbed engine."""
        query = get_case_study("movie_genre").expert_sparql
        undisturbed = client.execute(query)
        cache = ResultCache()
        faulty = FaultyEndpoint(
            Endpoint(engine, max_rows=50, result_cache=cache),
            chaos_layers(seed=61))
        chaos = HttpClient(faulty, max_retries=MAX_RETRIES,
                           breaker_threshold=None)
        cold = chaos.execute(query)
        assert cold.equals_bag(undisturbed)
        assert sum(faulty.faults_injected.values()) > 0
        warm = chaos.execute(query)
        assert warm.equals_bag(undisturbed)
        # The warm pass really was served out of the shared cache.
        assert cache.stats.hits > 0

    def test_every_case_study_bag_identical_with_cache_under_chaos(
            self, case_study, engine, client):
        """Cache-enabled chaos runs across the whole case-study corpus."""
        undisturbed = client.execute(case_study.expert_sparql)
        cache = ResultCache()
        faulty = FaultyEndpoint(
            Endpoint(engine, max_rows=50, result_cache=cache),
            chaos_layers(seed=37))
        chaos = HttpClient(faulty, max_retries=MAX_RETRIES,
                           breaker_threshold=None)
        assert chaos.execute(case_study.expert_sparql) \
            .equals_bag(undisturbed)
        assert chaos.execute(case_study.expert_sparql) \
            .equals_bag(undisturbed)

    def test_failed_execution_is_never_inserted_into_cache(self, engine):
        """Every request trips a mid-stream timeout: the run fails
        classified, and none of the partial pulls may leak into the
        result cache."""
        query = get_case_study("kg_embedding").expert_sparql
        cache = ResultCache()
        faulty = FaultyEndpoint(
            Endpoint(engine, max_rows=50, result_cache=cache),
            [MidStreamTimeouts(rate=1.0, seed=7)])
        chaos = HttpClient(faulty, max_retries=2, breaker_threshold=None)
        with pytest.raises(ClientError):
            chaos.execute(query)
        assert len(cache) == 0
        assert cache.stats.inserts == 0
