"""Direct-path vs text-path equivalence over the paper's workload.

The acceptance bar for the planner layer: for every case-study pipeline
(under both generation strategies) the direct model -> algebra -> plan
path must return exactly the same results as the SPARQL-text round trip —
and repeated executions must hit the plan cache.
"""

import pytest

from repro.client import EngineClient
from repro.sparql import ReferenceEvaluator  # noqa: F401 (documented pin)
from repro.workload import CASE_STUDIES, get_case_study


@pytest.fixture(params=[cs.key for cs in CASE_STUDIES])
def case_study(request):
    return get_case_study(request.param)


class TestDirectPathEquivalence:
    @pytest.mark.parametrize("strategy", ["optimized", "naive"])
    def test_direct_equals_text_path(self, case_study, engine, client,
                                     strategy):
        frame = case_study.frame()
        # Direct: model -> compiler -> plan -> columnar evaluator.
        direct = frame.execute(client, strategy=strategy)
        # Text: model -> SPARQL text -> parser -> plan -> evaluator.
        text = client.execute(frame.to_sparql(strategy=strategy))
        assert direct.equals_bag(text)

    def test_direct_equals_reference_plane(self, case_study, dataset):
        """The full pipeline (compiler + every optimizer pass) pinned
        against the seed dict-based evaluator."""
        from repro.sparql import Engine

        frame = case_study.frame()
        direct = frame.execute(EngineClient(Engine(dataset)))
        reference = EngineClient(Engine(dataset, columnar=False)) \
            .execute(frame.to_sparql())
        assert direct.equals_bag(reference)

    def test_repeated_execution_hits_plan_cache(self, case_study, dataset):
        from repro.sparql import Engine

        engine = Engine(dataset)
        client = EngineClient(engine)
        frame = case_study.frame()
        first = frame.execute(client)
        assert engine.plan_cache_hits == 0
        second = frame.execute(client)
        assert engine.plan_cache_hits == 1
        assert engine.last_plan.executions == 2
        assert first.equals_bag(second)


class TestPlanPathCost:
    def test_direct_path_skips_text_round_trip(self, case_study, dataset):
        """The direct path must not pay translate/parse: the plan comes
        from the model compiler."""
        from repro.sparql import Engine

        engine = Engine(dataset)
        client = EngineClient(engine)
        case_study.frame().execute(client)
        assert engine.last_plan is not None
        assert engine.last_plan.source == "model"

    def test_pass_pipeline_ran(self, case_study, dataset):
        from repro.sparql import Engine

        engine = Engine(dataset)
        EngineClient(engine).engine.query_model(
            case_study.frame().query_model())
        names = [s.name for s in engine.last_plan.pass_stats]
        assert names[:3] == ["FilterPushdown", "ProjectionPruning",
                             "BGPMerge"]
        assert "JoinOrdering" in names
