"""Tests for the Turtle parser and serializer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, RDF, URIRef, BlankNode
from repro.rdf import turtle
from repro.rdf.turtle import TurtleError


class TestDirectives:
    def test_prefix_directive(self):
        doc = "@prefix ex: <http://e/> . ex:a ex:p ex:b ."
        triples = list(turtle.parse(doc))
        assert triples == [(URIRef("http://e/a"), URIRef("http://e/p"),
                            URIRef("http://e/b"))]

    def test_sparql_style_prefix(self):
        doc = "PREFIX ex: <http://e/>\nex:a ex:p ex:b ."
        assert len(list(turtle.parse(doc))) == 1

    def test_unknown_prefix_raises(self):
        with pytest.raises(TurtleError):
            list(turtle.parse("nope:a nope:p nope:b ."))


class TestTriples:
    def test_a_keyword(self):
        doc = "@prefix ex: <http://e/> . ex:x a ex:Class ."
        triples = list(turtle.parse(doc))
        assert triples[0][1] == RDF.type

    def test_predicate_list(self):
        doc = ("@prefix ex: <http://e/> .\n"
               "ex:s ex:p ex:a ;\n     ex:q ex:b .")
        triples = list(turtle.parse(doc))
        assert len(triples) == 2
        assert triples[0][0] == triples[1][0]

    def test_object_list(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:p ex:a , ex:b , ex:c ."
        triples = list(turtle.parse(doc))
        assert len(triples) == 3
        assert {str(t[2]) for t in triples} == \
            {"http://e/a", "http://e/b", "http://e/c"}

    def test_dangling_semicolon(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:p ex:a ; ."
        assert len(list(turtle.parse(doc))) == 1

    def test_comments_ignored(self):
        doc = ("# top comment\n@prefix ex: <http://e/> .\n"
               "ex:s ex:p ex:a . # trailing\n")
        assert len(list(turtle.parse(doc))) == 1

    def test_blank_node_label(self):
        doc = "@prefix ex: <http://e/> . _:x ex:p _:y ."
        s, _, o = list(turtle.parse(doc))[0]
        assert s == BlankNode("x") and o == BlankNode("y")

    def test_anonymous_blank_node(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:p [] ."
        _, _, o = list(turtle.parse(doc))[0]
        assert isinstance(o, BlankNode)

    def test_blank_node_property_list(self):
        doc = ("@prefix ex: <http://e/> .\n"
               "ex:s ex:knows [ ex:name \"Bob\" ; ex:age 42 ] .")
        triples = list(turtle.parse(doc))
        assert len(triples) == 3
        anon = [t for t in triples if t[0] != URIRef("http://e/s")]
        assert len(anon) == 2

    def test_literal_subject_rejected(self):
        with pytest.raises(TurtleError):
            list(turtle.parse('"lit" <http://e/p> <http://e/o> .'))

    def test_missing_dot_rejected(self):
        with pytest.raises(TurtleError):
            list(turtle.parse("<http://e/a> <http://e/p> <http://e/b>"))


class TestLiterals:
    def parse_object(self, literal_text):
        doc = "@prefix ex: <http://e/> . ex:s ex:p %s ." % literal_text
        return list(turtle.parse(doc))[0][2]

    def test_plain_string(self):
        assert self.parse_object('"hello"') == Literal("hello")

    def test_long_string(self):
        obj = self.parse_object('"""multi\nline"""')
        assert obj.lexical == "multi\nline"

    def test_language_tag(self):
        assert self.parse_object('"chat"@fr').language == "fr"

    def test_typed_literal(self):
        obj = self.parse_object(
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert obj.value == 5

    def test_typed_literal_pname(self):
        doc = ("@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
               "@prefix ex: <http://e/> .\n"
               'ex:s ex:p "7"^^xsd:integer .')
        assert list(turtle.parse(doc))[0][2].value == 7

    @pytest.mark.parametrize("text,value", [
        ("42", 42), ("-3", -3), ("2.5", 2.5), ("1e3", 1000.0),
    ])
    def test_numeric_shorthand(self, text, value):
        assert self.parse_object(text).value == value

    def test_boolean_shorthand(self):
        assert self.parse_object("true").value is True
        assert self.parse_object("false").value is False

    def test_escapes(self):
        assert self.parse_object(r'"a\"b\nc"').lexical == 'a"b\nc'


class TestSerialization:
    def test_round_trip_graph(self):
        g = Graph()
        ex = "http://e/"
        g.add(URIRef(ex + "s"), URIRef(ex + "p"), URIRef(ex + "o"))
        g.add(URIRef(ex + "s"), URIRef(ex + "q"), Literal("v"))
        g.add(URIRef(ex + "s"), RDF.type, URIRef(ex + "C"))
        g.add(URIRef(ex + "t"), URIRef(ex + "p"), Literal(5))
        text = turtle.serialize(g.triples(), prefixes={"ex": ex})
        g2 = Graph()
        turtle.parse_into_graph(text, g2)
        assert set(g2.triples()) == set(g.triples())

    def test_serialize_uses_prefixes(self):
        triples = [(URIRef("http://e/s"), URIRef("http://e/p"),
                    URIRef("http://e/o"))]
        text = turtle.serialize(triples, prefixes={"ex": "http://e/"})
        assert "@prefix ex:" in text
        assert "ex:s ex:p ex:o ." in text

    def test_serialize_groups_subjects(self):
        triples = [
            (URIRef("http://e/s"), URIRef("http://e/p"), Literal(1)),
            (URIRef("http://e/s"), URIRef("http://e/q"), Literal(2)),
        ]
        text = turtle.serialize(triples, prefixes={"ex": "http://e/"})
        assert " ;" in text

    def test_serialize_renders_rdf_type_as_a(self):
        triples = [(URIRef("http://e/s"), RDF.type, URIRef("http://e/C"))]
        text = turtle.serialize(triples, prefixes={"ex": "http://e/"})
        assert " a " in text

    def test_synthetic_graph_round_trip(self):
        from repro.data import generate_dbpedia
        g = generate_dbpedia(scale=0.05)
        text = turtle.serialize(g.triples())
        g2 = Graph()
        count = turtle.parse_into_graph(text, g2)
        assert count == len(g)
        assert set(g2.triples()) == set(g.triples())


_safe_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=25)


@settings(max_examples=60, deadline=None)
@given(_safe_text, st.sampled_from([None, "en", "pt-BR"]))
def test_literal_round_trip_property(text, language):
    lit = Literal(text, language=language)
    triples = [(URIRef("http://e/s"), URIRef("http://e/p"), lit)]
    parsed = list(turtle.parse(turtle.serialize(triples)))
    assert parsed == triples
