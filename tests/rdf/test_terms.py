"""Unit tests for RDF term types."""

import pytest

from repro.rdf.terms import (BlankNode, Literal, URIRef, Variable,
                             XSD_BOOLEAN, XSD_DATE, XSD_DOUBLE, XSD_INTEGER,
                             is_concrete, literal_year)


class TestURIRef:
    def test_value_round_trip(self):
        uri = URIRef("http://example.org/a")
        assert str(uri) == "http://example.org/a"

    def test_equality(self):
        assert URIRef("http://x/a") == URIRef("http://x/a")
        assert URIRef("http://x/a") != URIRef("http://x/b")

    def test_not_equal_to_literal_with_same_text(self):
        assert URIRef("http://x/a") != Literal("http://x/a")

    def test_hashable_as_dict_key(self):
        d = {URIRef("http://x/a"): 1}
        assert d[URIRef("http://x/a")] == 1

    def test_n3_rendering(self):
        assert URIRef("http://x/a").n3() == "<http://x/a>"

    def test_immutable(self):
        uri = URIRef("http://x/a")
        with pytest.raises(AttributeError):
            uri.value = "other"

    def test_empty_uri_rejected(self):
        with pytest.raises(ValueError):
            URIRef("")

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            URIRef(42)


class TestLiteral:
    def test_plain_string(self):
        lit = Literal("hello")
        assert lit.value == "hello"
        assert lit.datatype is None

    def test_int_coercion(self):
        lit = Literal(42)
        assert lit.datatype == XSD_INTEGER
        assert lit.value == 42
        assert lit.lexical == "42"

    def test_float_coercion(self):
        lit = Literal(2.5)
        assert lit.datatype == XSD_DOUBLE
        assert lit.value == 2.5

    def test_bool_coercion(self):
        assert Literal(True).datatype == XSD_BOOLEAN
        assert Literal(True).value is True
        assert Literal(False).value is False

    def test_bool_checked_before_int(self):
        # bool is a subclass of int; must map to xsd:boolean.
        assert Literal(True).datatype == XSD_BOOLEAN

    def test_typed_integer_from_lexical(self):
        lit = Literal("7", datatype=XSD_INTEGER)
        assert lit.value == 7
        assert lit.is_numeric

    def test_bad_numeric_lexical_kept_as_string(self):
        lit = Literal("seven", datatype=XSD_INTEGER)
        assert lit.value == "seven"

    def test_language_tag(self):
        lit = Literal("chat", language="fr")
        assert lit.language == "fr"
        assert lit.n3() == '"chat"@fr'

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_equality_includes_datatype(self):
        assert Literal("5", datatype=XSD_INTEGER) != Literal("5")

    def test_n3_escaping(self):
        lit = Literal('say "hi"\n')
        assert lit.n3() == '"say \\"hi\\"\\n"'

    def test_n3_typed(self):
        assert Literal(3).n3() == '"3"^^<%s>' % XSD_INTEGER

    def test_is_numeric(self):
        assert Literal(3).is_numeric
        assert not Literal("3").is_numeric

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"


class TestBlankNode:
    def test_auto_label_unique(self):
        assert BlankNode() != BlankNode()

    def test_explicit_label_equality(self):
        assert BlankNode("b1") == BlankNode("b1")

    def test_n3(self):
        assert BlankNode("x").n3() == "_:x"


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?movie").name == "movie"
        assert Variable("movie").name == "movie"
        assert Variable("$movie").name == "movie"

    def test_equality(self):
        assert Variable("x") == Variable("?x")

    def test_n3(self):
        assert Variable("x").n3() == "?x"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")


class TestHelpers:
    def test_is_concrete(self):
        assert is_concrete(URIRef("http://x/a"))
        assert is_concrete(Literal("x"))
        assert not is_concrete(Variable("x"))

    def test_literal_year(self):
        assert literal_year(Literal("2015-03-01", datatype=XSD_DATE)) == 2015
        assert literal_year(Literal("not-a-date")) is None
