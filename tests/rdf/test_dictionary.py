"""Unit tests for dictionary encoding and the id-keyed graph statistics."""

import pytest

from repro.rdf import (Dataset, Graph, Literal, TermDictionary, URIRef,
                       shared_dictionary)


def uri(name):
    return URIRef("http://x/" + name)


class TestTermDictionary:
    def test_encode_is_stable(self):
        d = TermDictionary()
        a = d.encode(uri("a"))
        assert d.encode(uri("a")) == a  # same value object -> same id
        assert d.encode(URIRef("http://x/a")) == a  # equality, not identity

    def test_ids_are_dense(self):
        d = TermDictionary()
        ids = [d.encode(uri("n%d" % i)) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert len(d) == 5

    def test_decode_roundtrip(self):
        d = TermDictionary()
        terms = [uri("a"), Literal(5), Literal("x", language="en")]
        assert [d.decode(d.encode(t)) for t in terms] == terms

    def test_lookup_does_not_intern(self):
        d = TermDictionary()
        assert d.lookup(uri("never-seen")) is None
        assert len(d) == 0

    def test_distinct_terms_distinct_ids(self):
        d = TermDictionary()
        assert d.encode(Literal("1")) != d.encode(Literal(1))  # typed differs

    def test_decode_many_preserves_none(self):
        d = TermDictionary()
        a = d.encode(uri("a"))
        assert d.decode_many([a, None, a]) == [uri("a"), None, uri("a")]


class TestGraphEncoding:
    def test_graphs_share_the_process_dictionary_by_default(self):
        g1, g2 = Graph("http://g1"), Graph("http://g2")
        assert g1.dictionary is g2.dictionary is shared_dictionary()
        g1.add(uri("e"), uri("p"), uri("v"))
        # The same term must map to the same id from the other graph.
        assert g2.dictionary.lookup(uri("e")) == \
            g1.dictionary.lookup(uri("e"))

    def test_private_dictionary_possible(self):
        d = TermDictionary()
        g = Graph("http://g", dictionary=d)
        g.add(uri("e"), uri("p"), uri("v"))
        assert len(d) == 3
        assert list(g.triples()) == [(uri("e"), uri("p"), uri("v"))]

    def test_triples_ids_match_decoded_triples(self):
        d = TermDictionary()
        g = Graph("http://g", dictionary=d)
        g.add(uri("a"), uri("p"), uri("b"))
        g.add(uri("a"), uri("p"), Literal(7))
        decoded = {tuple(d.decode(i) for i in t) for t in g.triples_ids()}
        assert decoded == set(g.triples())

    def test_unknown_term_matches_nothing(self):
        g = Graph("http://g", dictionary=TermDictionary())
        g.add(uri("a"), uri("p"), uri("b"))
        assert list(g.triples(uri("zzz"), None, None)) == []
        assert g.count(None, uri("zzz"), None) == 0
        assert (uri("zzz"), uri("p"), uri("b")) not in g

    def test_dataset_rejects_mixed_dictionaries(self):
        ds = Dataset()
        ds.add_graph(Graph("http://g1", dictionary=TermDictionary()))
        with pytest.raises(ValueError):
            ds.add_graph(Graph("http://g2", dictionary=TermDictionary()))

    def test_dataset_create_graph_inherits_dictionary(self):
        ds = Dataset()
        d = TermDictionary()
        ds.add_graph(Graph("http://g1", dictionary=d))
        assert ds.create_graph("http://g2").dictionary is d


class TestPredicateProfile:
    @pytest.fixture
    def graph(self):
        g = Graph("http://g", dictionary=TermDictionary())
        g.add(uri("s1"), uri("p"), uri("o1"))
        g.add(uri("s1"), uri("p"), uri("o2"))
        g.add(uri("s2"), uri("p"), uri("o1"))
        g.add(uri("s1"), uri("q"), uri("o3"))
        return g

    def test_profile_values(self, graph):
        assert graph.predicate_profile(uri("p")) == (3, 2, 2)
        assert graph.predicate_profile(uri("q")) == (1, 1, 1)
        assert graph.predicate_profile(uri("absent")) == (0, 0, 0)

    def test_profile_is_memoized(self, graph):
        first = graph.predicate_profile(uri("p"))
        assert graph.predicate_profile(uri("p")) is first  # cached tuple

    def test_profile_invalidated_by_add(self, graph):
        graph.predicate_profile(uri("p"))
        graph.add(uri("s3"), uri("p"), uri("o9"))
        assert graph.predicate_profile(uri("p")) == (4, 3, 3)

    def test_profile_invalidated_by_remove(self, graph):
        graph.predicate_profile(uri("p"))
        graph.remove(uri("s2"), uri("p"), uri("o1"))
        assert graph.predicate_profile(uri("p")) == (2, 1, 2)

    def test_other_predicates_keep_cache_on_mutation(self, graph):
        q_profile = graph.predicate_profile(uri("q"))
        graph.add(uri("s3"), uri("p"), uri("o9"))
        assert graph.predicate_profile(uri("q")) is q_profile

    def test_union_profile_aggregates(self, graph):
        g2 = Graph("http://g2", dictionary=graph.dictionary)
        g2.add(uri("z1"), uri("p"), uri("o1"))
        ds = Dataset()
        ds.add_graph(graph)
        ds.add_graph(g2)
        assert ds.union_view().predicate_profile(uri("p")) == (4, 3, 3)


class TestLiteralCount:
    def test_counts_triples_not_distinct_objects(self):
        g = Graph("http://g", dictionary=TermDictionary())
        five = Literal(5)
        g.add(uri("a"), uri("p"), five)
        g.add(uri("b"), uri("p"), five)  # same literal object, new triple
        g.add(uri("c"), uri("p"), uri("d"))
        assert g.literal_count() == 2
        assert g.distinct_literal_count() == 1

    def test_empty_graph(self):
        g = Graph("http://g", dictionary=TermDictionary())
        assert g.literal_count() == 0
        assert g.distinct_literal_count() == 0
