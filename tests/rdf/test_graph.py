"""Unit tests for the indexed graph, including property-based index checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, RDF, URIRef
from repro.rdf.namespaces import DBPO


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def small_graph():
    g = Graph("http://test")
    g.add(uri("a"), uri("p"), uri("b"))
    g.add(uri("a"), uri("p"), uri("c"))
    g.add(uri("a"), uri("q"), uri("b"))
    g.add(uri("d"), uri("p"), uri("b"))
    g.add(uri("d"), uri("q"), Literal(5))
    return g


class TestAddRemove:
    def test_add_returns_true_for_new(self):
        g = Graph()
        assert g.add(uri("a"), uri("p"), uri("b")) is True

    def test_add_duplicate_returns_false(self):
        g = Graph()
        g.add(uri("a"), uri("p"), uri("b"))
        assert g.add(uri("a"), uri("p"), uri("b")) is False
        assert len(g) == 1

    def test_len_counts_triples(self, small_graph):
        assert len(small_graph) == 5

    def test_contains(self, small_graph):
        assert (uri("a"), uri("p"), uri("b")) in small_graph
        assert (uri("a"), uri("p"), uri("z")) not in small_graph

    def test_remove_present(self, small_graph):
        assert small_graph.remove(uri("a"), uri("p"), uri("b")) is True
        assert len(small_graph) == 4
        assert (uri("a"), uri("p"), uri("b")) not in small_graph

    def test_remove_absent(self, small_graph):
        assert small_graph.remove(uri("z"), uri("p"), uri("b")) is False

    def test_remove_then_match(self, small_graph):
        small_graph.remove(uri("a"), uri("p"), uri("b"))
        matches = list(small_graph.triples(None, uri("p"), uri("b")))
        assert matches == [(uri("d"), uri("p"), uri("b"))]

    def test_update_bulk(self):
        g = Graph()
        added = g.update([(uri("a"), uri("p"), uri("b")),
                          (uri("a"), uri("p"), uri("b")),
                          (uri("c"), uri("p"), uri("d"))])
        assert added == 2
        assert len(g) == 2


class TestPatternMatching:
    @pytest.mark.parametrize("pattern,expected_count", [
        ((None, None, None), 5),
        (("a", None, None), 3),
        ((None, "p", None), 3),
        ((None, None, "b"), 3),
        (("a", "p", None), 2),
        (("a", None, "b"), 2),
        ((None, "p", "b"), 2),
        (("a", "p", "b"), 1),
        (("z", None, None), 0),
        ((None, "z", None), 0),
        ((None, None, "z"), 0),
        (("a", "z", None), 0),
        (("z", "p", "b"), 0),
    ])
    def test_all_bound_combinations(self, small_graph, pattern, expected_count):
        s, p, o = [uri(t) if t else None for t in pattern]
        assert len(list(small_graph.triples(s, p, o))) == expected_count

    def test_count_matches_iteration(self, small_graph):
        for s in (None, uri("a")):
            for p in (None, uri("p")):
                for o in (None, uri("b")):
                    assert small_graph.count(s, p, o) == \
                        len(list(small_graph.triples(s, p, o)))

    def test_literal_object_lookup(self, small_graph):
        assert small_graph.count(None, None, Literal(5)) == 1


class TestStatistics:
    def test_predicate_stats(self, small_graph):
        stats = small_graph.predicate_stats()
        assert stats[uri("p")] == 3
        assert stats[uri("q")] == 2

    def test_subjects_and_objects(self, small_graph):
        assert set(small_graph.subjects(uri("p"))) == {uri("a"), uri("d")}
        assert set(small_graph.objects(uri("p"))) == {uri("b"), uri("c")}

    def test_classes(self):
        g = Graph()
        g.add(uri("i1"), RDF.type, DBPO.Film)
        g.add(uri("i2"), RDF.type, DBPO.Film)
        g.add(uri("i3"), RDF.type, DBPO.Actor)
        assert g.classes() == {DBPO.Film: 2, DBPO.Actor: 1}

    def test_literal_count(self, small_graph):
        assert small_graph.literal_count() == 1


# ----------------------------------------------------------------------
# Property-based: the three indexes always agree.
# ----------------------------------------------------------------------
_terms = st.integers(min_value=0, max_value=8).map(lambda i: uri("n%d" % i))
_triples = st.lists(st.tuples(_terms, _terms, _terms), max_size=60)


@settings(max_examples=60, deadline=None)
@given(_triples)
def test_indexes_consistent_under_insertion(triples):
    g = Graph()
    unique = set(triples)
    for t in triples:
        g.add(*t)
    assert len(g) == len(unique)
    assert set(g.triples()) == unique
    # Every per-position lookup agrees with a full scan.
    for s, p, o in unique:
        assert set(g.triples(s, None, None)) == {t for t in unique if t[0] == s}
        assert set(g.triples(None, p, None)) == {t for t in unique if t[1] == p}
        assert set(g.triples(None, None, o)) == {t for t in unique if t[2] == o}


@settings(max_examples=40, deadline=None)
@given(_triples, st.data())
def test_indexes_consistent_under_removal(triples, data):
    g = Graph()
    for t in triples:
        g.add(*t)
    unique = list(set(triples))
    if unique:
        to_remove = data.draw(st.lists(st.sampled_from(unique), max_size=10))
        removed = set()
        for t in to_remove:
            g.remove(*t)
            removed.add(t)
        remaining = set(triples) - removed
        assert set(g.triples()) == remaining
        assert len(g) == len(remaining)


# ----------------------------------------------------------------------
# Sorted runs + galloping intersection (the multiway-join substrate)
# ----------------------------------------------------------------------

from repro.rdf import gallop, intersect_runs  # noqa: E402


class TestSortedRuns:
    def _graph(self):
        g = Graph()
        d = g.dictionary
        p = d.encode(URIRef("urn:p"))
        q = d.encode(URIRef("urn:q"))
        for i in range(10):
            g.add_ids(d.encode(URIRef("urn:s%d" % i)), p,
                      d.encode(URIRef("urn:o%d" % (i % 3))))
        for i in range(0, 10, 2):
            g.add_ids(d.encode(URIRef("urn:s%d" % i)), q,
                      d.encode(URIRef("urn:x")))
        return g, d, p, q

    def test_runs_sorted_and_match_index_sets(self):
        g, d, p, q = self._graph()
        s0 = d.encode(URIRef("urn:s0"))
        o0 = d.encode(URIRef("urn:o0"))
        run = g.objects_run(s0, p)
        assert list(run) == sorted(run)
        assert set(run) == set(g.objects_for(s0, p))
        run = g.subjects_run(p, o0)
        assert list(run) == sorted(run)
        assert set(run) == set(g.subjects_for(p, o0))
        psubj = g.predicate_subjects_run(q)
        assert list(psubj) == sorted(psubj)
        assert len(psubj) == 5
        assert g.predicate_subjects_set(q) == frozenset(psubj)

    def test_runs_memoized_and_counted(self):
        g, d, p, q = self._graph()
        s0 = d.encode(URIRef("urn:s0"))
        before = g.sorted_runs_built
        first = g.objects_run(s0, p)
        assert g.sorted_runs_built == before + 1
        assert g.objects_run(s0, p) is first  # cached, no rebuild
        assert g.sorted_runs_built == before + 1

    def test_missing_keys_return_empty_and_never_cache(self):
        g, d, p, q = self._graph()
        before = g.sorted_runs_built
        assert g.objects_run(999999, p) == ()
        assert g.subjects_run(p, 999999) == ()
        assert g.predicate_subjects_run(999999) == ()
        assert g.sorted_runs_built == before

    def test_mutation_invalidates_exact_entries(self):
        g, d, p, q = self._graph()
        s0 = d.encode(URIRef("urn:s0"))
        o0 = d.encode(URIRef("urn:o0"))
        old_objects = g.objects_run(s0, p)
        old_subjects = g.subjects_run(p, o0)
        old_psubj = g.predicate_subjects_run(p)
        fresh = d.encode(URIRef("urn:fresh"))
        g.add_ids(s0, p, fresh)
        assert fresh in g.objects_run(s0, p)
        assert len(g.objects_run(s0, p)) == len(old_objects) + 1
        # (p, o0) entry is untouched by an (s0, p, fresh) insert ...
        assert g.subjects_run(p, o0) is old_subjects
        # ... but the p-subjects entry is rebuilt (same members here).
        assert g.predicate_subjects_run(p) is not old_psubj
        g.remove(URIRef("urn:s0"), URIRef("urn:p"), URIRef("urn:fresh"))
        assert tuple(g.objects_run(s0, p)) == tuple(old_objects)


class TestGallopingIntersection:
    def test_gallop_finds_first_not_less(self):
        run = (2, 4, 8, 16, 32, 64)
        assert gallop(run, 1) == 0
        assert gallop(run, 2) == 0
        assert gallop(run, 3) == 1
        assert gallop(run, 33) == 5
        assert gallop(run, 64) == 5
        assert gallop(run, 65) == 6
        assert gallop(run, 16, lo=3) == 3
        assert gallop(run, 16, lo=4) == 4  # lo past the hit: stays put

    def test_intersect_matches_set_semantics(self):
        a = tuple(range(0, 100, 3))
        b = tuple(range(0, 100, 5))
        c = tuple(range(0, 100, 2))
        got = intersect_runs([a, b, c])
        assert got == sorted(set(a) & set(b) & set(c))
        assert intersect_runs([a, ()]) == []
        assert intersect_runs([]) == []
        assert intersect_runs([a]) == list(a)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sets(st.integers(min_value=0, max_value=200)),
                min_size=1, max_size=4))
def test_intersect_runs_property(sets):
    runs = [tuple(sorted(s)) for s in sets]
    expect = set(runs[0])
    for run in runs[1:]:
        expect &= set(run)
    assert intersect_runs(runs) == sorted(expect)
