"""Unit tests for namespaces and prefix resolution."""

import pytest

from repro.rdf import DBPP, Namespace, PrefixMap, RDF, URIRef


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x/")
        assert ns.thing == URIRef("http://x/thing")

    def test_item_access(self):
        ns = Namespace("http://x/")
        assert ns["a-b.c"] == URIRef("http://x/a-b.c")

    def test_contains(self):
        ns = Namespace("http://x/")
        assert ns.thing in ns
        assert URIRef("http://y/thing") not in ns

    def test_underscore_attribute_raises(self):
        ns = Namespace("http://x/")
        with pytest.raises(AttributeError):
            ns._private

    def test_common_vocabulary(self):
        assert str(RDF.type) == \
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        assert str(DBPP.starring) == "http://dbpedia.org/property/starring"


class TestPrefixMap:
    def test_resolve_default_prefix(self):
        pm = PrefixMap()
        assert pm.resolve("dbpp:starring") == DBPP.starring

    def test_resolve_custom_prefix(self):
        pm = PrefixMap({"ex": "http://example.org/"})
        assert pm.resolve("ex:a") == URIRef("http://example.org/a")

    def test_custom_overrides_default(self):
        pm = PrefixMap({"dbpp": "http://other/"})
        assert pm.resolve("dbpp:x") == URIRef("http://other/x")

    def test_resolve_angle_brackets(self):
        pm = PrefixMap()
        assert pm.resolve("<http://x/a>") == URIRef("http://x/a")

    def test_resolve_absolute(self):
        pm = PrefixMap()
        assert pm.resolve("http://x/a") == URIRef("http://x/a")

    def test_unknown_prefix_raises(self):
        pm = PrefixMap()
        with pytest.raises(KeyError):
            pm.resolve("nope:x")

    def test_not_prefixed_raises(self):
        pm = PrefixMap()
        with pytest.raises(ValueError):
            pm.resolve("plainname")

    def test_shrink_picks_longest_base(self):
        pm = PrefixMap({"a": "http://x/", "b": "http://x/deep/"})
        assert pm.shrink(URIRef("http://x/deep/term")) == "b:term"

    def test_shrink_falls_back_to_angle_brackets(self):
        pm = PrefixMap(include_defaults=False)
        assert pm.shrink(URIRef("http://unknown/x")) == "<http://unknown/x>"

    def test_shrink_rejects_ugly_local_names(self):
        pm = PrefixMap({"x": "http://x/"}, include_defaults=False)
        assert pm.shrink(URIRef("http://x/has space")) == "<http://x/has space>"

    def test_used_prefixes(self):
        pm = PrefixMap()
        used = pm.used_prefixes("SELECT * WHERE { ?m dbpp:starring ?a }")
        assert "dbpp" in used
        assert "swrc" not in used

    def test_bind_and_iterate(self):
        pm = PrefixMap(include_defaults=False)
        pm.bind("ex", "http://example.org/")
        assert ("ex", "http://example.org/") in list(pm)
        assert "ex" in pm
