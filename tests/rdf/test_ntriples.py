"""Unit and property tests for the N-Triples parser/serializer."""

import gzip
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, URIRef, BlankNode, ntriples
from repro.rdf.ntriples import NTriplesError, parse_line


class TestParseLine:
    def test_simple_triple(self):
        s, p, o = parse_line("<http://x/a> <http://x/p> <http://x/b> .")
        assert s == URIRef("http://x/a")
        assert p == URIRef("http://x/p")
        assert o == URIRef("http://x/b")

    def test_plain_literal(self):
        _, _, o = parse_line('<http://x/a> <http://x/p> "hello" .')
        assert o == Literal("hello")

    def test_typed_literal(self):
        _, _, o = parse_line(
            '<http://x/a> <http://x/p> '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert o.value == 5

    def test_language_literal(self):
        _, _, o = parse_line('<http://x/a> <http://x/p> "chat"@fr .')
        assert o.language == "fr"

    def test_blank_nodes(self):
        s, _, o = parse_line("_:b1 <http://x/p> _:b2 .")
        assert s == BlankNode("b1")
        assert o == BlankNode("b2")

    def test_escapes_in_literal(self):
        _, _, o = parse_line(r'<http://x/a> <http://x/p> "a\"b\nc\\d" .')
        assert o.lexical == 'a"b\nc\\d'

    def test_unicode_escape(self):
        _, _, o = parse_line(r'<http://x/a> <http://x/p> "é" .')
        assert o.lexical == "é"

    def test_trailing_comment(self):
        triple = parse_line("<http://x/a> <http://x/p> <http://x/b> . # note")
        assert triple[0] == URIRef("http://x/a")

    @pytest.mark.parametrize("bad", [
        "<http://x/a> <http://x/p> <http://x/b>",      # no dot
        "<http://x/a> <http://x/p> .",                  # no object
        "<http://x/a> \"lit\" <http://x/b> .",          # literal predicate
        "not a triple at all",
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesError):
            parse_line(bad)


class TestDocumentParsing:
    DOC = """
# a comment
<http://x/a> <http://x/p> <http://x/b> .

<http://x/a> <http://x/q> "v" .
"""

    def test_parse_skips_comments_and_blanks(self):
        triples = list(ntriples.parse(self.DOC))
        assert len(triples) == 2

    def test_parse_into_graph(self):
        g = Graph()
        added = ntriples.parse_into_graph(self.DOC, g)
        assert added == 2
        assert len(g) == 2

    def test_parse_from_stream(self):
        triples = list(ntriples.parse(io.StringIO(self.DOC)))
        assert len(triples) == 2

    def test_error_reports_line_number(self):
        with pytest.raises(NTriplesError) as exc_info:
            list(ntriples.parse("<http://x/a> <http://x/p> <http://x/b> .\n"
                                "garbage\n"))
        assert exc_info.value.line_number == 2


class TestSerialization:
    def test_round_trip_simple(self):
        g = Graph()
        g.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal("v\n"))
        g.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal(7))
        text = ntriples.serialize(g.triples())
        g2 = Graph()
        ntriples.parse_into_graph(text, g2)
        assert set(g2.triples()) == set(g.triples())

    def test_write_to_stream(self):
        buffer = io.StringIO()
        count = ntriples.write(
            [(URIRef("http://x/a"), URIRef("http://x/p"), URIRef("http://x/b"))],
            buffer)
        assert count == 1
        assert buffer.getvalue().strip().endswith(".")


# Property-based round-trip over generated literals.
_safe_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=30)


@settings(max_examples=80, deadline=None)
@given(_safe_text, st.sampled_from([None, "en", "fr-CA"]))
def test_literal_round_trip(text, language):
    lit = Literal(text, language=language)
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), lit)
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed == triple


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=-10**12, max_value=10**12))
def test_integer_literal_round_trip(value):
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), Literal(value))
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed[2].value == value


# Full-unicode round trips: anything a literal can hold must survive
# serialize -> parse, including the characters the escape table handles
# (quotes, backslashes, \n \r \t) and everything it passes through raw.
_any_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),  # no surrogates
    max_size=60)


@settings(max_examples=150, deadline=None)
@given(_any_text)
def test_full_unicode_literal_round_trip(text):
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), Literal(text))
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed[2].lexical == text


@settings(max_examples=60, deadline=None)
@given(_any_text)
def test_typed_unicode_literal_round_trip(text):
    lit = Literal(text, datatype="http://example.org/dt")
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), lit)
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed[2] == lit


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=12),
       st.integers(min_value=0, max_value=6),
       st.sampled_from(["", "x", "\n", '"']))
def test_backslash_and_quote_runs_round_trip(slashes, quotes, filler):
    # pathological escape pile-ups: \\\\\\"""\n... in every interleaving
    text = "\\" * slashes + '"' * quotes + filler + "\\" * (slashes % 3)
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), Literal(text))
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed[2].lexical == text


def test_long_literal_round_trip():
    text = ('long "quoted" \\segment\\ with\ttabs\nand lines ' * 250)
    assert len(text) > 10_000
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), Literal(text))
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed[2].lexical == text


def test_document_round_trip_preserves_unicode():
    g = Graph()
    g.add(URIRef("http://x/s"), URIRef("http://x/p"),
          Literal('emoji \U0001f600, combining é, quote " end'))
    g.add(URIRef("http://x/s"), URIRef("http://x/p"),
          Literal("tab\there", language="en"))
    g2 = Graph()
    ntriples.parse_into_graph(ntriples.serialize(g.triples()), g2)
    assert set(g2.triples()) == set(g.triples())


class TestEscapeParsing:
    def test_u_escape(self):
        _, _, o = parse_line(r'<http://x/a> <http://x/p> "é" .')
        assert o.lexical == "é"

    def test_wide_u_escape(self):
        _, _, o = parse_line(r'<http://x/a> <http://x/p> "\U0001F600" .')
        assert o.lexical == "\U0001F600"

    def test_mixed_escapes(self):
        _, _, o = parse_line(
            r'<http://x/a> <http://x/p> "a\tb\\\"c" .')
        assert o.lexical == 'a\tb\\"c'


class TestBulkLoad:
    DOC = ('<http://x/a> <http://x/p> <http://x/b> .\n'
           '# comment line\n'
           '<http://x/a> <http://x/q> "café" .\n')

    def expected(self):
        g = Graph()
        ntriples.parse_into_graph(self.DOC, g)
        return set(g.triples())

    def test_load_from_file_path(self, tmp_path):
        path = tmp_path / "dump.nt"
        path.write_text(self.DOC, encoding="utf-8")
        g = Graph()
        added = ntriples.parse_into_graph(str(path), g)
        assert added == 2
        assert set(g.triples()) == self.expected()

    def test_load_from_gzip_path(self, tmp_path):
        # gzip is sniffed from magic bytes, not the file name
        path = tmp_path / "dump.nt.bin"
        with gzip.open(str(path), "wt", encoding="utf-8") as fobj:
            fobj.write(self.DOC)
        g = Graph()
        added = ntriples.parse_into_graph(str(path), g)
        assert added == 2
        assert set(g.triples()) == self.expected()

    def test_lenient_mode_counts_skipped_lines(self, tmp_path):
        path = tmp_path / "dirty.nt"
        path.write_text(self.DOC + "garbage line\n<http://x/a> .\n",
                        encoding="utf-8")
        g = Graph()
        added, skipped = ntriples.parse_into_graph(str(path), g,
                                                   strict=False)
        assert (added, skipped) == (2, 2)
        assert set(g.triples()) == self.expected()

    def test_strict_mode_still_raises(self, tmp_path):
        path = tmp_path / "dirty.nt"
        path.write_text("garbage\n", encoding="utf-8")
        with pytest.raises(NTriplesError):
            ntriples.parse_into_graph(str(path), Graph())

    def test_lenient_mode_on_stream(self):
        stream = io.StringIO(self.DOC + "broken\n")
        g = Graph()
        assert ntriples.parse_into_graph(stream, g, strict=False) == (2, 1)

    def test_document_text_is_never_treated_as_path(self):
        # single-line document text parses as text even if a file of
        # that exact name were to exist somewhere on disk
        g = Graph()
        added = ntriples.parse_into_graph(
            '<http://x/a> <http://x/p> <http://x/b> .', g)
        assert added == 1
