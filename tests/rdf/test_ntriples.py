"""Unit and property tests for the N-Triples parser/serializer."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, URIRef, BlankNode, ntriples
from repro.rdf.ntriples import NTriplesError, parse_line


class TestParseLine:
    def test_simple_triple(self):
        s, p, o = parse_line("<http://x/a> <http://x/p> <http://x/b> .")
        assert s == URIRef("http://x/a")
        assert p == URIRef("http://x/p")
        assert o == URIRef("http://x/b")

    def test_plain_literal(self):
        _, _, o = parse_line('<http://x/a> <http://x/p> "hello" .')
        assert o == Literal("hello")

    def test_typed_literal(self):
        _, _, o = parse_line(
            '<http://x/a> <http://x/p> '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert o.value == 5

    def test_language_literal(self):
        _, _, o = parse_line('<http://x/a> <http://x/p> "chat"@fr .')
        assert o.language == "fr"

    def test_blank_nodes(self):
        s, _, o = parse_line("_:b1 <http://x/p> _:b2 .")
        assert s == BlankNode("b1")
        assert o == BlankNode("b2")

    def test_escapes_in_literal(self):
        _, _, o = parse_line(r'<http://x/a> <http://x/p> "a\"b\nc\\d" .')
        assert o.lexical == 'a"b\nc\\d'

    def test_unicode_escape(self):
        _, _, o = parse_line(r'<http://x/a> <http://x/p> "é" .')
        assert o.lexical == "é"

    def test_trailing_comment(self):
        triple = parse_line("<http://x/a> <http://x/p> <http://x/b> . # note")
        assert triple[0] == URIRef("http://x/a")

    @pytest.mark.parametrize("bad", [
        "<http://x/a> <http://x/p> <http://x/b>",      # no dot
        "<http://x/a> <http://x/p> .",                  # no object
        "<http://x/a> \"lit\" <http://x/b> .",          # literal predicate
        "not a triple at all",
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesError):
            parse_line(bad)


class TestDocumentParsing:
    DOC = """
# a comment
<http://x/a> <http://x/p> <http://x/b> .

<http://x/a> <http://x/q> "v" .
"""

    def test_parse_skips_comments_and_blanks(self):
        triples = list(ntriples.parse(self.DOC))
        assert len(triples) == 2

    def test_parse_into_graph(self):
        g = Graph()
        added = ntriples.parse_into_graph(self.DOC, g)
        assert added == 2
        assert len(g) == 2

    def test_parse_from_stream(self):
        triples = list(ntriples.parse(io.StringIO(self.DOC)))
        assert len(triples) == 2

    def test_error_reports_line_number(self):
        with pytest.raises(NTriplesError) as exc_info:
            list(ntriples.parse("<http://x/a> <http://x/p> <http://x/b> .\n"
                                "garbage\n"))
        assert exc_info.value.line_number == 2


class TestSerialization:
    def test_round_trip_simple(self):
        g = Graph()
        g.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal("v\n"))
        g.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal(7))
        text = ntriples.serialize(g.triples())
        g2 = Graph()
        ntriples.parse_into_graph(text, g2)
        assert set(g2.triples()) == set(g.triples())

    def test_write_to_stream(self):
        buffer = io.StringIO()
        count = ntriples.write(
            [(URIRef("http://x/a"), URIRef("http://x/p"), URIRef("http://x/b"))],
            buffer)
        assert count == 1
        assert buffer.getvalue().strip().endswith(".")


# Property-based round-trip over generated literals.
_safe_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=30)


@settings(max_examples=80, deadline=None)
@given(_safe_text, st.sampled_from([None, "en", "fr-CA"]))
def test_literal_round_trip(text, language):
    lit = Literal(text, language=language)
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), lit)
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed == triple


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=-10**12, max_value=10**12))
def test_integer_literal_round_trip(value):
    triple = (URIRef("http://x/s"), URIRef("http://x/p"), Literal(value))
    parsed = parse_line(ntriples.serialize_triple(triple))
    assert parsed[2].value == value
