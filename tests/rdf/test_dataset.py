"""Unit tests for named-graph datasets and graph unions."""

import pytest

from repro.rdf import Dataset, Graph, URIRef


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def two_graph_dataset():
    ds = Dataset()
    g1 = ds.create_graph("http://g1")
    g1.add(uri("a"), uri("p"), uri("b"))
    g1.add(uri("shared"), uri("p"), uri("b"))
    g2 = ds.create_graph("http://g2")
    g2.add(uri("c"), uri("p"), uri("d"))
    g2.add(uri("shared"), uri("p"), uri("b"))  # duplicated across graphs
    return ds


class TestDataset:
    def test_create_graph_idempotent(self):
        ds = Dataset()
        g1 = ds.create_graph("http://g")
        g2 = ds.create_graph("http://g")
        assert g1 is g2

    def test_graph_lookup(self, two_graph_dataset):
        assert two_graph_dataset.graph("http://g1").uri == "http://g1"

    def test_unknown_graph_raises_with_candidates(self, two_graph_dataset):
        with pytest.raises(KeyError) as exc_info:
            two_graph_dataset.graph("http://nope")
        assert "http://g1" in str(exc_info.value)

    def test_contains_and_len(self, two_graph_dataset):
        assert "http://g1" in two_graph_dataset
        assert len(two_graph_dataset) == 2

    def test_uris_sorted(self, two_graph_dataset):
        assert two_graph_dataset.uris() == ["http://g1", "http://g2"]

    def test_add_graph_replaces(self):
        ds = Dataset()
        ds.add_graph(Graph("http://g"))
        replacement = Graph("http://g")
        ds.add_graph(replacement)
        assert ds.graph("http://g") is replacement


class TestGraphUnion:
    def test_union_deduplicates_across_graphs(self, two_graph_dataset):
        union = two_graph_dataset.union_view()
        triples = list(union.triples())
        assert len(triples) == 3  # shared triple appears once

    def test_union_len_is_sum(self, two_graph_dataset):
        # len() is the raw sum; triples() deduplicates.
        assert len(two_graph_dataset.union_view()) == 4

    def test_union_pattern_match(self, two_graph_dataset):
        union = two_graph_dataset.union_view()
        assert union.count(uri("shared"), None, None) == 1
        assert union.count(None, uri("p"), None) == 3

    def test_union_subset(self, two_graph_dataset):
        union = two_graph_dataset.union_view(["http://g1"])
        assert union.count(None, None, None) == 2

    def test_union_predicate_stats(self, two_graph_dataset):
        stats = two_graph_dataset.union_view().predicate_stats()
        assert stats[uri("p")] == 4  # stats are additive (pre-dedup)
