"""Tests for the synthetic knowledge-graph generators."""

import pytest

from repro.data import (DBLP_URI, DBPEDIA_URI, YAGO_URI, build_dataset,
                        clear_cache, generate_dblp, generate_dbpedia,
                        generate_yago)
from repro.rdf import DBPO, DBPP, DBPR, DC, DCTERMS, RDF, SWRC, YAGO
from repro.rdf.terms import Literal, URIRef


SCALE = 0.1


@pytest.fixture(scope="module")
def dbpedia():
    return generate_dbpedia(scale=SCALE)


@pytest.fixture(scope="module")
def dblp():
    return generate_dblp(scale=SCALE)


class TestDeterminism:
    def test_dbpedia_deterministic(self):
        a = generate_dbpedia(scale=0.05, seed=1)
        b = generate_dbpedia(scale=0.05, seed=1)
        assert set(a.triples()) == set(b.triples())

    def test_different_seeds_differ(self):
        a = generate_dbpedia(scale=0.05, seed=1)
        b = generate_dbpedia(scale=0.05, seed=2)
        assert set(a.triples()) != set(b.triples())

    def test_dblp_deterministic(self):
        a = generate_dblp(scale=0.05, seed=1)
        b = generate_dblp(scale=0.05, seed=1)
        assert set(a.triples()) == set(b.triples())


class TestDbpediaSchema:
    def test_graph_uri(self, dbpedia):
        assert dbpedia.uri == DBPEDIA_URI

    def test_expected_classes_present(self, dbpedia):
        classes = dbpedia.classes()
        for cls in (DBPO.Film, DBPO.Actor, DBPO.BasketballPlayer,
                    DBPO.BasketballTeam, DBPO.Athlete, DBPO.Book,
                    DBPO.Writer):
            assert classes.get(cls, 0) > 0, cls

    def test_starring_is_multivalued_and_skewed(self, dbpedia):
        counts = {}
        for _, _, actor in dbpedia.triples(None, DBPP.starring, None):
            counts[actor] = counts.get(actor, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert values[0] >= 5 * values[len(values) // 2]  # heavy skew

    def test_every_film_has_mandatory_attributes(self, dbpedia):
        films = list(dbpedia.subjects(DBPP.studio))
        for film in films[:50]:
            assert dbpedia.count(film, DBPP.country) == 1
            assert dbpedia.count(film, DBPO.language) == 1
            assert dbpedia.count(film, DBPO.runtime) == 1

    def test_genre_is_optional(self, dbpedia):
        films = [s for s, _, o in dbpedia.triples(None, RDF.type, None)
                 if o == DBPO.Film]
        with_genre = sum(1 for f in films if dbpedia.count(f, DBPO.genre))
        assert 0 < with_genre < len(films)

    def test_actor_birthplace_single_valued(self, dbpedia):
        actors = [s for s, _, o in dbpedia.triples(None, RDF.type, None)
                  if o == DBPO.Actor]
        for actor in actors[:50]:
            assert dbpedia.count(actor, DBPP.birthPlace) == 1

    def test_united_states_is_common_birthplace(self, dbpedia):
        total = dbpedia.count(None, DBPP.birthPlace, None)
        usa = dbpedia.count(None, DBPP.birthPlace, DBPR.United_States)
        assert usa / total > 0.2

    def test_scale_parameter(self):
        small = generate_dbpedia(scale=0.05)
        large = generate_dbpedia(scale=0.2)
        assert len(large) > len(small)


class TestDblpSchema:
    def test_graph_uri(self, dblp):
        assert dblp.uri == DBLP_URI

    def test_papers_have_full_schema(self, dblp):
        papers = [s for s, _, o in dblp.triples(None, RDF.type, None)
                  if o == SWRC.InProceedings]
        assert papers
        for paper in papers[:50]:
            assert dblp.count(paper, DC.creator) >= 1
            assert dblp.count(paper, DCTERMS.issued) == 1
            assert dblp.count(paper, SWRC.series) == 1
            assert dblp.count(paper, DC.title) == 1

    def test_dates_are_iso(self, dblp):
        for _, _, date in list(dblp.triples(None, DCTERMS.issued, None))[:20]:
            assert isinstance(date, Literal)
            year = int(date.lexical[:4])
            assert 1990 <= year <= 2020

    def test_core_authors_are_prolific_in_sigmod_vldb(self, dblp):
        from repro.rdf import DBLPRC
        target = {DBLPRC.vldb, DBLPRC.sigmod}
        by_author = {}
        for paper, _, conf in dblp.triples(None, SWRC.series, None):
            if conf in target:
                for _, _, author in dblp.triples(paper, DC.creator, None):
                    by_author[author] = by_author.get(author, 0) + 1
        assert max(by_author.values()) >= 20

    def test_titles_use_topic_vocabulary(self, dblp):
        from repro.data import TOPICS
        vocabulary = {w for words in TOPICS.values() for w in words}
        titles = [str(o) for _, _, o in list(
            dblp.triples(None, DC.title, None))[:30]]
        for title in titles:
            words = set(title.lower().split())
            assert words & vocabulary


class TestYago:
    def test_shares_actor_uris_with_dbpedia(self):
        yago = generate_yago(scale=SCALE)
        shared = [s for s, _, o in yago.triples(None, RDF.type, YAGO.Actor)
                  if str(s).startswith(str(DBPR.base))]
        assert shared

    def test_has_yago_only_actors(self):
        yago = generate_yago(scale=SCALE)
        own = [s for s, _, o in yago.triples(None, RDF.type, YAGO.Actor)
               if str(s).startswith(str(YAGO.base))]
        assert own


class TestLoader:
    def test_build_dataset_contains_three_graphs(self):
        ds = build_dataset(scale=SCALE)
        assert set(ds.uris()) == {DBPEDIA_URI, DBLP_URI, YAGO_URI}

    def test_cache_returns_same_object(self):
        a = build_dataset(scale=SCALE)
        b = build_dataset(scale=SCALE)
        assert a is b

    def test_cache_cleared(self):
        a = build_dataset(scale=SCALE)
        clear_cache()
        b = build_dataset(scale=SCALE)
        assert a is not b

    def test_no_yago_option(self):
        ds = build_dataset(scale=SCALE, include_yago=False, use_cache=False)
        assert YAGO_URI not in ds
