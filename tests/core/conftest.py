"""Shared fixtures for core tests: a small movie knowledge graph."""

import pytest

from repro.client import EngineClient
from repro.core import KnowledgeGraph
from repro.rdf import DBPO, DBPP, DBPR, Graph, Literal, RDF, RDFS
from repro.sparql import Engine


@pytest.fixture(scope="session")
def movie_graph():
    g = Graph("http://dbpedia.org")
    # Six movies; ActorA stars in five, ActorB in two, ActorC in one.
    casts = {
        "Movie1": ["ActorA", "ActorB"],
        "Movie2": ["ActorA"],
        "Movie3": ["ActorA"],
        "Movie4": ["ActorA", "ActorC"],
        "Movie5": ["ActorA", "ActorB"],
        "Movie6": ["ActorC"],
    }
    for movie, actors in casts.items():
        for actor in actors:
            g.add(DBPR[movie], DBPP.starring, DBPR[actor])
        g.add(DBPR[movie], RDFS.label, Literal(movie + " label"))
        g.add(DBPR[movie], RDF.type, DBPO.Film)
    g.add(DBPR.Movie1, DBPO.genre, DBPR.Drama)
    g.add(DBPR.Movie2, DBPO.genre, DBPR.Comedy)
    g.add(DBPR.ActorA, DBPP.birthPlace, DBPR.United_States)
    g.add(DBPR.ActorB, DBPP.birthPlace, DBPR.France)
    g.add(DBPR.ActorC, DBPP.birthPlace, DBPR.United_States)
    g.add(DBPR.ActorA, DBPP.academyAward, DBPR.BestActor)
    for actor in ("ActorA", "ActorB", "ActorC"):
        g.add(DBPR[actor], RDFS.label, Literal(actor + " label"))
        g.add(DBPR[actor], RDF.type, DBPO.Actor)
    return g


@pytest.fixture(scope="session")
def engine(movie_graph):
    return Engine(movie_graph)


@pytest.fixture
def client(engine):
    return EngineClient(engine)


@pytest.fixture
def kg():
    return KnowledgeGraph(graph_uri="http://dbpedia.org")
