"""Tests for the exploration operators, including the keyword-search
extension (listed as future work in the paper)."""

import pytest

from repro.core import KnowledgeGraph


class TestKeywordSearch:
    def test_search_generates_regex_filter(self, kg):
        frame = kg.search("drama")
        text = frame.to_sparql()
        assert 'regex(str(?label), "drama", "i")' in text
        assert "rdfs:label" in text

    def test_search_case_sensitive(self, kg):
        frame = kg.search("Drama", case_insensitive=False)
        assert '"Drama")' in frame.to_sparql()

    def test_search_escapes_regex_metacharacters(self, kg):
        frame = kg.search("a.b(c)")
        text = frame.to_sparql()
        # The dot and parens must be escaped in the SPARQL regex literal.
        assert "a\\\\.b\\\\(c\\\\)" in text

    def test_search_finds_entities(self, kg, client):
        df = kg.search("Movie1").execute(client)
        assert "http://dbpedia.org/resource/Movie1" in df.column("entity")

    def test_search_case_insensitive_matches(self, kg, client):
        lower = kg.search("movie1").execute(client)
        assert len(lower) >= 1

    def test_search_custom_predicate(self, kg, client):
        frame = kg.search("Movie", entity_col="m", label_col="name",
                          predicate="rdfs:label")
        df = frame.execute(client)
        assert df.columns == ["m", "name"]
        assert len(df) == 6

    def test_search_no_matches(self, kg, client):
        assert len(kg.search("zzz-nothing").execute(client)) == 0

    def test_search_composes_with_operators(self, kg, client):
        frame = kg.search("Movie").filter({"entity": ["isURI"]}) \
            .sort({"label": "asc"}).head(3)
        df = frame.execute(client)
        assert len(df) == 3


class TestExplorationOnFixture:
    def test_classes_and_freq_counts(self, kg, client):
        df = kg.classes_and_freq().execute(client)
        counts = dict(df.to_records())
        assert counts["http://dbpedia.org/ontology/Film"] == 6
        assert counts["http://dbpedia.org/ontology/Actor"] == 3

    def test_predicates_and_freq_counts(self, kg, client):
        df = kg.predicates_and_freq().execute(client)
        counts = dict(df.to_records())
        assert counts["http://dbpedia.org/property/starring"] == 9

    def test_num_entities(self, kg, client):
        df = kg.num_entities("dbpo:Film").execute(client)
        assert df.to_records() == [(6,)]

    def test_features_lists_predicates_of_class(self, kg, client):
        df = kg.features("dbpo:Actor").execute(client)
        predicates = set(df.column("feature"))
        assert "http://dbpedia.org/property/birthPlace" in predicates
        assert "http://www.w3.org/2000/01/rdf-schema#label" in predicates
