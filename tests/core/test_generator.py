"""Unit tests for optimized query generation: Section 4.2 and its three
necessary nesting cases."""

import pytest

from repro.core import (INCOMING, InnerJoin, LeftOuterJoin, OPTIONAL,
                        OuterJoin, RightOuterJoin)
from repro.core.generator import GenerationError, Generator, render_term
from repro.core.query_model import QueryModel


def model_of(frame) -> QueryModel:
    return frame.query_model()


class TestRenderTerm:
    @pytest.mark.parametrize("text,expected", [
        ("movie", "?movie"),
        ("?movie", "?movie"),
        ("dbpp:starring", "dbpp:starring"),
        ("<http://x/a>", "<http://x/a>"),
        ('"literal"', '"literal"'),
        ("42", "42"),
    ])
    def test_rendering(self, text, expected):
        assert render_term(text) == expected

    def test_empty_rejected(self):
        with pytest.raises(GenerationError):
            render_term("")


class TestSeedExpandFilter:
    def test_seed_triple(self, kg):
        model = model_of(kg.feature_domain_range("dbpp:starring",
                                                 "movie", "actor"))
        assert model.triples == [("?movie", "dbpp:starring", "?actor")]
        assert model.from_graphs == ["http://dbpedia.org"]

    def test_expand_out(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("actor", [("dbpp:birthPlace", "country")])
        model = model_of(frame)
        assert ("?actor", "dbpp:birthPlace", "?country") in model.triples

    def test_expand_in(self, kg):
        frame = kg.entities("dbpo:Actor", "actor") \
            .expand("actor", [("dbpp:starring", "movie", INCOMING)])
        model = model_of(frame)
        assert ("?movie", "dbpp:starring", "?actor") in model.triples

    def test_expand_optional_creates_block(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("movie", [("dbpo:genre", "genre", OPTIONAL)])
        model = model_of(frame)
        assert len(model.optionals) == 1
        assert model.optionals[0].triples == [("?movie", "dbpo:genre",
                                               "?genre")]

    def test_filters_accumulate_in_same_model(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("actor", [("dbpp:birthPlace", "c")]) \
            .filter({"c": ["=dbpr:United_States"]}) \
            .filter({"actor": ["isURI"]})
        model = model_of(frame)
        assert model.subqueries == []  # no nesting needed
        assert len(model.filters) == 2

    def test_no_gratuitous_nesting_for_long_chain(self, kg):
        frame = kg.entities("dbpo:Film", "film")
        for index in range(8):
            frame = frame.expand("film", [("dbpp:p%d" % index,
                                           "c%d" % index)])
        model = model_of(frame)
        assert model.subqueries == []
        assert len(model.triples) == 9


class TestGroupingAndCase1:
    def test_group_by_sets_aggregation(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n", unique=True)
        model = model_of(frame)
        assert model.group_columns == ["actor"]
        agg = model.aggregations[0]
        assert agg.function == "count" and agg.distinct
        assert agg.alias == "n"

    def test_filter_on_aggregate_becomes_having(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n") \
            .filter({"n": [">=5"]})
        model = model_of(frame)
        assert model.having == ["?n >= 5"]
        assert model.subqueries == []

    def test_expand_on_grouped_wraps(self, kg):
        """Nesting Case 1: expand after grouping requires a subquery."""
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n") \
            .expand("actor", [("dbpp:birthPlace", "country")])
        model = model_of(frame)
        assert len(model.subqueries) == 1
        assert model.subqueries[0].is_grouped
        assert ("?actor", "dbpp:birthPlace", "?country") in model.triples

    def test_filter_on_group_column_wraps(self, kg):
        """Case 1 variant: filtering a grouping column after aggregation."""
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n") \
            .filter({"actor": ["=dbpr:ActorA"]})
        model = model_of(frame)
        assert len(model.subqueries) == 1
        assert model.filters == ["?actor = dbpr:ActorA"]

    def test_only_one_wrap_for_multiple_postgroup_expands(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n") \
            .expand("actor", [("dbpp:birthPlace", "c"), ("rdfs:label", "l")])
        model = model_of(frame)
        assert len(model.subqueries) == 1
        assert len(model.triples) == 2

    def test_whole_frame_aggregate(self, kg):
        frame = kg.entities("dbpo:Film", "film").count("film", "total",
                                                       unique=True)
        model = model_of(frame)
        assert model.group_columns == []
        assert model.aggregations[0].alias == "total"
        assert model.is_grouped

    def test_aggregation_without_group_by_rejected(self, kg):
        from repro.core.operators import AggregationOperator
        frame = kg.entities("dbpo:Film", "film")
        bad = frame._extend(AggregationOperator("count", "film", "n"))
        with pytest.raises(GenerationError):
            bad.query_model()


class TestModifiers:
    def test_sort_and_head(self, kg):
        frame = kg.entities("dbpo:Film", "film") \
            .sort({"film": "desc"}).head(10, 2)
        model = model_of(frame)
        assert model.order_keys == [("film", "desc")]
        assert model.limit == 10 and model.offset == 2

    def test_pattern_after_head_wraps(self, kg):
        frame = kg.entities("dbpo:Film", "film").head(10) \
            .expand("film", [("rdfs:label", "l")])
        model = model_of(frame)
        assert len(model.subqueries) == 1
        assert model.subqueries[0].limit == 10

    def test_second_head_wraps(self, kg):
        frame = kg.entities("dbpo:Film", "film").head(10).head(5)
        model = model_of(frame)
        assert model.limit == 5
        assert model.subqueries[0].limit == 10

    def test_select_cols(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .select_cols(["movie"])
        assert model_of(frame).select_columns == ["movie"]

    def test_select_on_grouped_wraps(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n").select_cols(["actor"])
        model = model_of(frame)
        assert len(model.subqueries) == 1
        assert model.select_columns == ["actor"]


class TestJoins:
    def test_inner_join_flat_frames_merges_patterns(self, kg):
        left = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        right = kg.seed("actor", "dbpp:birthPlace", "country")
        model = model_of(left.join(right, "actor", InnerJoin))
        assert model.subqueries == []
        assert len(model.triples) == 2

    def test_inner_join_deduplicates_shared_triples(self, kg):
        base = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        left = base.filter({"actor": ["isURI"]})
        model = model_of(left.join(base, "actor", InnerJoin))
        assert model.triples.count(("?movie", "dbpp:starring", "?actor")) == 1

    def test_join_with_grouped_nests_grouped_side(self, kg):
        """Nesting Case 2."""
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        counts = movies.group_by(["actor"]).count("movie", "n")
        model = model_of(movies.join(counts, "actor", InnerJoin))
        assert len(model.subqueries) == 1
        assert model.subqueries[0].is_grouped
        assert model.triples  # outer keeps the flat pattern

    def test_join_two_grouped_nests_both(self, kg):
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        a = movies.group_by(["actor"]).count("movie", "n1")
        b = movies.group_by(["actor"]).count("movie", "n2")
        model = model_of(a.join(b, "actor", InnerJoin))
        assert len(model.subqueries) == 2

    def test_left_outer_join_flat_uses_optional_block(self, kg):
        left = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        right = kg.seed("actor", "dbpp:academyAward", "award")
        model = model_of(left.join(right, "actor", LeftOuterJoin))
        assert len(model.optionals) == 1
        assert model.optionals[0].triples == [("?actor", "dbpp:academyAward",
                                               "?award")]

    def test_left_outer_join_grouped_right_nests(self, kg):
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        counts = movies.group_by(["actor"]).count("movie", "n")
        model = model_of(movies.join(counts, "actor", LeftOuterJoin))
        assert len(model.optional_subqueries) == 1

    def test_right_outer_join_swaps(self, kg):
        left = kg.seed("actor", "dbpp:academyAward", "award")
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        model = model_of(left.join(movies, "actor", RightOuterJoin))
        # movies become the mandatory pattern; awards the optional block
        assert ("?movie", "dbpp:starring", "?actor") in model.triples
        assert model.optionals[0].triples == [("?actor", "dbpp:academyAward",
                                               "?award")]

    def test_full_outer_join_builds_union(self, kg):
        """Nesting Case 3: UNION of the two OPTIONAL arrangements."""
        left = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        right = kg.seed("actor", "dbpp:birthPlace", "country")
        model = model_of(left.join(right, "actor", OuterJoin))
        assert len(model.union_models) == 2
        first, second = model.union_models
        assert len(first.subqueries) == 1
        assert len(first.optional_subqueries) == 1
        assert len(second.subqueries) == 1

    def test_join_renames_columns(self, kg):
        left = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        right = kg.seed("person", "dbpp:birthPlace", "country")
        model = model_of(left.join(right, "actor", other_column="person",
                                   new_column="star", join_type=InnerJoin))
        assert ("?movie", "dbpp:starring", "?star") in model.triples
        assert ("?star", "dbpp:birthPlace", "?country") in model.triples

    def test_cross_graph_join_scopes_graphs(self, kg):
        from repro.core import KnowledgeGraph
        yago = KnowledgeGraph(graph_uri="http://yago-knowledge.org")
        left = kg.entities("dbpo:Actor", "actor")
        right = yago.entities("yago:Actor", "actor")
        model = model_of(left.join(right, "actor", InnerJoin))
        assert set(model.from_graphs) == {"http://dbpedia.org",
                                          "http://yago-knowledge.org"}
        scoped_graphs = {g for g, *_ in model.scoped_triples}
        assert scoped_graphs == {"http://dbpedia.org",
                                 "http://yago-knowledge.org"}


class TestDistinct:
    def test_distinct_sets_flag(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .distinct()
        assert model_of(frame).distinct

    def test_distinct_after_head_wraps(self, kg):
        frame = kg.entities("dbpo:Film", "film").head(5).distinct()
        model = model_of(frame)
        assert model.distinct
        assert len(model.subqueries) == 1

    def test_distinct_renders_select_distinct(self, kg):
        text = kg.entities("dbpo:Film", "film").distinct().to_sparql()
        assert "SELECT DISTINCT" in text

    def test_distinct_dedupes_results(self, kg, client):
        plain = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .select_cols(["actor"])
        deduped = plain.distinct()
        assert len(deduped.execute(client)) < len(plain.execute(client))
        assert len(deduped.execute(client)) == 3

    def test_distinct_naive_equivalence(self, kg, client):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .select_cols(["actor"]).distinct()
        assert frame.execute(client).equals_bag(
            frame.execute(client, strategy="naive"))


class TestCustomPrefixes:
    def test_joined_frame_brings_its_own_prefixes(self, kg, client, engine):
        """A join partner built on a KnowledgeGraph with custom prefix
        bindings must still produce a resolvable query."""
        from repro.core import InnerJoin, KnowledgeGraph
        custom = KnowledgeGraph(
            graph_uri="http://dbpedia.org",
            prefixes={"mine": "http://dbpedia.org/property/"})
        left = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        right = custom.seed("actor", "mine:birthPlace", "country")
        frame = left.join(right, "actor", InnerJoin)
        text = frame.to_sparql()
        assert "PREFIX mine:" in text
        df = frame.execute(client)
        assert len(df) > 0

    def test_kg_prefix_overrides_default(self, client):
        from repro.core import KnowledgeGraph
        kg2 = KnowledgeGraph(graph_uri="http://dbpedia.org",
                             prefixes={"dbpp": "http://dbpedia.org/property/"})
        frame = kg2.feature_domain_range("dbpp:starring", "movie", "actor")
        assert len(frame.execute(client)) == 9
