"""Table 1 of the paper: each RDFFrames operator maps to its SPARQL pattern.

These tests verify, operator by operator, that query generation emits the
pattern Table 1 specifies, by checking both the generated SPARQL text and
the result's semantics against a reference evaluation.
"""

import pytest

from repro.core import (INCOMING, InnerJoin, KnowledgeGraph, LeftOuterJoin,
                        OPTIONAL, OuterJoin, RightOuterJoin)


@pytest.fixture
def movies(kg):
    return kg.feature_domain_range("dbpp:starring", "movie", "actor")


class TestTable1:
    def test_seed_maps_to_triple_pattern(self, movies):
        # seed(col1, col2, col3) -> Project(Var(t), t)
        text = movies.to_sparql()
        assert "?movie dbpp:starring ?actor ." in text

    def test_expand_out_false_maps_to_join(self, movies):
        # expand(x, pred, y, out, false) -> P Join (?x, pred, ?y)
        text = movies.expand("actor", [("dbpp:birthPlace", "c")]).to_sparql()
        assert "?actor dbpp:birthPlace ?c ." in text
        assert "OPTIONAL" not in text

    def test_expand_in_false_maps_to_reversed_join(self, movies):
        # expand(x, pred, y, in, false) -> P Join (?y, pred, ?x)
        frame = movies.group_by(["actor"]).count("movie", "n") \
            .expand("actor", [("dbpp:starring", "m2", INCOMING)])
        assert "?m2 dbpp:starring ?actor ." in frame.to_sparql()

    def test_expand_out_true_maps_to_left_join(self, movies):
        # expand(x, pred, y, out, true) -> P LeftJoin (?x, pred, ?y)
        text = movies.expand("movie", [("dbpo:genre", "g", OPTIONAL)]) \
            .to_sparql()
        assert "OPTIONAL" in text
        assert "?movie dbpo:genre ?g ." in text

    def test_expand_in_true_maps_to_left_join_reversed(self, movies):
        frame = movies.expand("actor",
                              [("dbpp:starring", "m2", INCOMING, OPTIONAL)])
        text = frame.to_sparql()
        assert "OPTIONAL" in text
        assert "?m2 dbpp:starring ?actor ." in text

    def test_filter_maps_to_filter(self, movies):
        text = movies.filter({"actor": ["=dbpr:ActorA"]}).to_sparql()
        assert "FILTER ( ?actor = dbpr:ActorA )" in text

    def test_select_cols_maps_to_project(self, movies):
        text = movies.select_cols(["movie"]).to_sparql()
        assert "SELECT ?movie" in text

    def test_groupby_aggregation_maps_to_group_project(self, movies):
        text = movies.group_by(["actor"]).count("movie", "n").to_sparql()
        assert "SELECT ?actor (COUNT(?movie) AS ?n)" in text
        assert "GROUP BY ?actor" in text

    def test_aggregate_maps_to_implicit_group(self, movies):
        text = movies.count("movie", "total", unique=True).to_sparql()
        assert "SELECT (COUNT(DISTINCT ?movie) AS ?total)" in text
        assert "GROUP BY" not in text

    def test_inner_join_maps_to_join(self, kg, movies):
        other = kg.seed("actor", "dbpp:birthPlace", "c")
        text = movies.join(other, "actor", InnerJoin).to_sparql()
        assert "?movie dbpp:starring ?actor ." in text
        assert "?actor dbpp:birthPlace ?c ." in text

    def test_left_outer_join_maps_to_optional(self, kg, movies):
        other = kg.seed("actor", "dbpp:academyAward", "award")
        text = movies.join(other, "actor", LeftOuterJoin).to_sparql()
        assert "OPTIONAL" in text

    def test_right_outer_join_maps_to_flipped_optional(self, kg, movies):
        other = kg.seed("actor", "dbpp:academyAward", "award")
        text = movies.join(other, "actor", RightOuterJoin).to_sparql()
        # the movies pattern is optional, the awards pattern mandatory
        optional_part = text[text.index("OPTIONAL"):]
        assert "dbpp:starring" in optional_part

    def test_full_outer_join_maps_to_union_of_optionals(self, kg, movies):
        other = kg.seed("actor", "dbpp:birthPlace", "c")
        text = movies.join(other, "actor", OuterJoin).to_sparql()
        assert "UNION" in text
        assert text.count("OPTIONAL") == 2


class TestSemanticEquivalence:
    """Definition 6: the dataframe equals the evaluation of F(O_D)."""

    def test_seed_semantics(self, movies, client):
        df = movies.execute(client)
        reference = client.execute(
            "SELECT ?movie ?actor FROM <http://dbpedia.org> "
            "WHERE { ?movie <http://dbpedia.org/property/starring> ?actor }")
        assert df.equals_bag(reference)

    def test_expand_join_semantics(self, movies, client):
        df = movies.expand("actor", [("dbpp:birthPlace", "c")]) \
            .execute(client)
        # every row must satisfy both triples
        for row in df.iter_dicts():
            assert row["c"] is not None

    def test_expand_optional_semantics(self, movies, client):
        df = movies.expand("movie", [("dbpo:genre", "g", OPTIONAL)]) \
            .execute(client)
        plain = movies.execute(client)
        assert len(df) == len(plain)  # LeftJoin preserves cardinality here
        assert any(v is None for v in df.column("g"))

    def test_filter_semantics(self, movies, client):
        df = movies.filter({"actor": ["=dbpr:ActorA"]}).execute(client)
        assert set(df.column("actor")) == \
            {"http://dbpedia.org/resource/ActorA"}

    def test_group_semantics(self, movies, client):
        df = movies.group_by(["actor"]).count("movie", "n").execute(client)
        counts = dict(df.to_records())
        assert counts["http://dbpedia.org/resource/ActorA"] == 5
        assert counts["http://dbpedia.org/resource/ActorB"] == 2

    def test_full_outer_join_semantics(self, kg, client):
        # actors with awards FULL OUTER JOIN actors with genre movies
        awards = kg.seed("actor", "dbpp:academyAward", "award")
        births = kg.seed("actor", "dbpp:birthPlace", "country")
        df = awards.join(births, "actor", OuterJoin).execute(client)
        actors = set(df.column("actor"))
        # all actors with either an award or a birthplace appear
        assert "http://dbpedia.org/resource/ActorB" in actors  # birth only
        assert "http://dbpedia.org/resource/ActorA" in actors  # both
