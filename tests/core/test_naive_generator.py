"""Unit tests for naive query generation (the Section 6.3 baseline)."""

import pytest

from repro.core import InnerJoin, OPTIONAL, OuterJoin
from repro.core.naive_generator import NaiveGenerator, naive_transform
from repro.sparql import count_nested_selects, parse


def naive_text(frame):
    return frame.to_sparql(strategy="naive")


class TestStructure:
    def test_every_triple_becomes_subquery(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("actor", [("dbpp:birthPlace", "c"), ("rdfs:label", "l")])
        model = NaiveGenerator().generate(frame)
        assert model.triples == []
        assert len(model.subqueries) == 3
        for subquery in model.subqueries:
            assert len(subquery.triples) == 1

    def test_filters_stay_at_scope_level(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .filter({"actor": ["=dbpr:ActorA"]})
        model = NaiveGenerator().generate(frame)
        assert model.filters == ["?actor = dbpr:ActorA"]
        assert all(not s.filters for s in model.subqueries)

    def test_optional_becomes_optional_subquery(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("movie", [("dbpo:genre", "g", OPTIONAL)])
        model = NaiveGenerator().generate(frame)
        assert len(model.optional_subqueries) == 1

    def test_grouping_preserved(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "n").filter({"n": [">=2"]})
        model = NaiveGenerator().generate(frame)
        assert model.group_columns == ["actor"]
        assert model.having == ["?n >= 2"]

    def test_nested_scopes_transformed_recursively(self, kg):
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        counts = movies.group_by(["actor"]).count("movie", "n")
        model = NaiveGenerator().generate(movies.join(counts, "actor",
                                                      InnerJoin))
        # outer: one triple-subquery + the grouped subquery
        assert len(model.subqueries) == 2
        grouped = [s for s in model.subqueries if s.is_grouped][0]
        assert len(grouped.subqueries) == 1  # its triple is wrapped too

    def test_nesting_count_grows_with_operators(self, kg):
        frame = kg.entities("dbpo:Film", "film")
        for index in range(5):
            frame = frame.expand("film", [("dbpp:p%d" % index, "c%d" % index)])
        naive = parse(naive_text(frame))
        optimized = parse(frame.to_sparql())
        assert count_nested_selects(naive.pattern) == 6
        assert count_nested_selects(optimized.pattern) == 0

    def test_modifiers_preserved(self, kg):
        frame = kg.entities("dbpo:Film", "film").sort({"film": "asc"}).head(3)
        model = NaiveGenerator().generate(frame)
        assert model.limit == 3
        assert model.order_keys == [("film", "asc")]

    def test_union_members_transformed(self, kg):
        left = kg.entities("dbpo:Film", "film")
        right = kg.seed("film", "dbpo:genre", "genre")
        model = NaiveGenerator().generate(left.join(right, "film", OuterJoin))
        assert len(model.union_models) == 2
        for member in model.union_models:
            assert member.triples == []


class TestEquivalence:
    """The paper verifies all strategies return identical results."""

    @pytest.mark.parametrize("build", [
        lambda kg: kg.feature_domain_range("dbpp:starring", "movie", "actor"),
        lambda kg: kg.feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", [("dbpp:birthPlace", "c")])
            .filter({"c": ["=dbpr:United_States"]}),
        lambda kg: kg.feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("movie", [("dbpo:genre", "g", OPTIONAL)]),
        lambda kg: kg.feature_domain_range("dbpp:starring", "movie", "actor")
            .group_by(["actor"]).count("movie", "n", unique=True)
            .filter({"n": [">=2"]}),
        lambda kg: kg.feature_domain_range("dbpp:starring", "movie", "actor")
            .group_by(["actor"]).count("movie", "n")
            .expand("actor", [("dbpp:birthPlace", "c")]),
        lambda kg: kg.entities("dbpo:Film", "film")
            .sort({"film": "asc"}).head(4, 1),
    ], ids=["seed", "expand+filter", "optional", "group+having",
            "expand-after-group", "sort+head"])
    def test_naive_equals_optimized(self, kg, client, build):
        frame = build(kg)
        optimized = frame.execute(client)
        naive = frame.execute(client, strategy="naive")
        assert optimized.equals_bag(naive)

    def test_join_equivalence(self, kg, client):
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        counts = movies.group_by(["actor"]).count("movie", "n")
        frame = movies.join(counts, "actor", InnerJoin)
        assert frame.execute(client).equals_bag(
            frame.execute(client, strategy="naive"))

    def test_full_outer_join_equivalence(self, kg, client):
        awards = kg.seed("actor", "dbpp:academyAward", "award")
        births = kg.seed("actor", "dbpp:birthPlace", "country")
        frame = awards.join(births, "actor", OuterJoin)
        assert frame.execute(client).equals_bag(
            frame.execute(client, strategy="naive"))


class TestCost:
    def test_naive_materializes_more_subqueries(self, kg, client, engine):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("actor", [("dbpp:birthPlace", "c"), ("rdfs:label", "l")])
        frame.execute(client)
        optimized_subqueries = engine.last_stats.materialized_subqueries
        frame.execute(client, strategy="naive")
        naive_subqueries = engine.last_stats.materialized_subqueries
        assert naive_subqueries > optimized_subqueries

    def test_unknown_strategy_rejected(self, kg):
        frame = kg.entities("dbpo:Film", "film")
        with pytest.raises(Exception):
            frame.to_sparql(strategy="turbo")
