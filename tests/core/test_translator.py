"""Unit tests for query-model -> SPARQL translation and validation."""

import pytest

from repro.core import OPTIONAL, InnerJoin
from repro.core.query_model import Aggregation, OptionalBlock, QueryModel
from repro.core.translator import TranslationError, translate
from repro.sparql.parser import parse


class TestBasicRendering:
    def test_minimal_query(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        text = frame.to_sparql()
        assert "SELECT *" in text
        assert "FROM <http://dbpedia.org>" in text
        assert "?movie dbpp:starring ?actor ." in text

    def test_prefixes_only_when_used(self, kg):
        text = kg.feature_domain_range("dbpp:starring", "m", "a").to_sparql()
        assert "PREFIX dbpp:" in text
        assert "PREFIX swrc:" not in text

    def test_prefix_inside_literal_not_emitted(self, kg):
        # 'swrc:' occurring only inside a quoted literal is not a use of
        # the prefix; emission is driven by the model's terms, not by a
        # substring scan of the rendered body.
        frame = kg.feature_domain_range("dbpp:starring", "m", "a") \
            .filter({"a": ['="swrc: not a prefix use"']})
        text = frame.to_sparql()
        assert '"swrc: not a prefix use"' in text
        assert "PREFIX swrc:" not in text

    def test_prefix_in_filter_expression_emitted(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "m", "a") \
            .filter({"a": ["=dbpr:ActorA"]})
        assert "PREFIX dbpr:" in frame.to_sparql()

    def test_prefix_in_typed_literal_datatype_emitted(self, kg):
        # The ^^datatype of a typed literal is a prefix use.
        frame = kg.seed("s", "dbpp:year", '"2000"^^xsd:gYear')
        text = frame.to_sparql()
        assert "PREFIX xsd:" in text

    def test_prefix_in_function_cast_emitted(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "m", "a") \
            .expand("m", [("dbpp:year", "y")]) \
            .filter({"y": ["year(xsd:dateTime(?y)) >= 2000"]})
        assert "PREFIX xsd:" in frame.to_sparql(validate=False)

    def test_filter_rendering(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "m", "a") \
            .filter({"a": ["=dbpr:ActorA"]})
        assert "FILTER ( ?a = dbpr:ActorA )" in frame.to_sparql()

    def test_optional_rendering(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "m", "a") \
            .expand("m", [("dbpo:genre", "g", OPTIONAL)])
        text = frame.to_sparql()
        assert "OPTIONAL {" in text
        assert "?m dbpo:genre ?g ." in text

    def test_group_rendering_matches_paper_listing2(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .group_by(["actor"]).count("movie", "movie_count", unique=True) \
            .filter({"movie_count": [">=50"]})
        text = frame.to_sparql()
        assert "SELECT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)" in text
        assert "GROUP BY ?actor" in text
        assert "HAVING ( COUNT(DISTINCT ?movie) >= 50 )" in text

    def test_modifier_rendering(self, kg):
        frame = kg.entities("dbpo:Film", "film") \
            .sort({"film": "desc"}).head(7, 3)
        text = frame.to_sparql()
        assert "ORDER BY DESC(?film)" in text
        assert "LIMIT 7" in text
        assert "OFFSET 3" in text

    def test_subquery_rendering(self, kg):
        movies = kg.feature_domain_range("dbpp:starring", "movie", "actor")
        counts = movies.group_by(["actor"]).count("movie", "n")
        text = movies.join(counts, "actor", InnerJoin).to_sparql()
        # nested SELECT inside braces
        assert text.count("SELECT") == 2
        inner = text[text.index("{"):]
        assert "GROUP BY ?actor" in inner

    def test_union_rendering(self, kg):
        from repro.core import OuterJoin
        left = kg.entities("dbpo:Film", "film")
        right = kg.seed("film", "dbpo:genre", "genre")
        text = left.join(right, "film", OuterJoin).to_sparql()
        assert "UNION" in text
        assert text.count("OPTIONAL") == 2

    def test_graph_scoped_rendering(self, kg):
        from repro.core import KnowledgeGraph
        yago = KnowledgeGraph(graph_uri="http://yago-knowledge.org")
        frame = kg.entities("dbpo:Actor", "actor") \
            .join(yago.entities("yago:Actor", "actor"), "actor", InnerJoin)
        text = frame.to_sparql()
        assert "GRAPH <http://dbpedia.org>" in text
        assert "GRAPH <http://yago-knowledge.org>" in text


class TestValidation:
    def test_generated_queries_parse(self, kg):
        frame = kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("movie", [("dbpo:genre", "g", OPTIONAL)]) \
            .group_by(["actor"]).count("movie", "n") \
            .filter({"n": [">=2"]})
        parse(frame.to_sparql())  # should not raise

    def test_validation_catches_missing_columns(self):
        model = QueryModel()
        model.add_triple("?s", "<http://x/p>", "?o")
        model.select_columns = ["s", "ghost"]
        with pytest.raises(TranslationError):
            translate(model)

    def test_validation_can_be_disabled(self):
        model = QueryModel()
        model.add_triple("?s", "<http://x/p>", "?o")
        model.select_columns = ["s", "ghost"]
        text = translate(model, validate=False)
        assert "?ghost" in text

    def test_invalid_syntax_reported(self):
        model = QueryModel()
        model.add_triple("?s", "<http://x/p>", "?o")
        model.add_filter("?o >=")  # malformed expression
        with pytest.raises(TranslationError):
            translate(model)


class TestQueryModelUnits:
    def test_visible_columns_flat(self):
        model = QueryModel()
        model.add_triple("?a", "<http://x/p>", "?b")
        assert model.visible_columns() == ["a", "b"]

    def test_visible_columns_grouped(self):
        model = QueryModel()
        model.add_triple("?a", "<http://x/p>", "?b")
        model.set_aggregation(["a"], Aggregation("count", "b", "n"))
        assert model.visible_columns() == ["a", "n"]

    def test_rename_column_recurses(self):
        model = QueryModel()
        model.add_triple("?a", "<http://x/p>", "?b")
        model.add_filter("?a >= 5")
        block = OptionalBlock()
        block.triples.append(("?a", "<http://x/q>", "?c"))
        model.add_optional(block)
        inner = QueryModel()
        inner.add_triple("?a", "<http://x/r>", "?d")
        model.add_subquery(inner)
        model.rename_column("a", "z")
        assert model.triples == [("?z", "<http://x/p>", "?b")]
        assert model.filters == ["?z >= 5"]
        assert model.optionals[0].triples[0][0] == "?z"
        assert model.subqueries[0].triples[0][0] == "?z"

    def test_rename_does_not_touch_prefixed_names(self):
        model = QueryModel()
        model.add_triple("?a", "<http://x/p>", "?ab")
        model.rename_column("a", "z")
        assert model.triples == [("?z", "<http://x/p>", "?ab")]

    def test_wrap_moves_from_graphs_to_outer(self):
        model = QueryModel()
        model.add_graph("http://g")
        model.add_triple("?a", "<http://x/p>", "?b")
        outer = model.wrap()
        assert outer.from_graphs == ["http://g"]
        assert outer.subqueries[0].from_graphs == []

    def test_copy_is_deep(self):
        model = QueryModel()
        model.add_triple("?a", "<http://x/p>", "?b")
        clone = model.copy()
        clone.add_triple("?c", "<http://x/q>", "?d")
        assert len(model.triples) == 1

    def test_as_optional_block_rejects_grouped(self):
        model = QueryModel()
        model.set_aggregation(["a"], Aggregation("count", "b", "n"))
        with pytest.raises(ValueError):
            model.as_optional_block()

    def test_aggregation_sparql_forms(self):
        assert Aggregation("count", "m", "n", True).to_sparql() == \
            "(COUNT(DISTINCT ?m) AS ?n)"
        assert Aggregation("average", "m", "n").to_sparql() == \
            "(AVG(?m) AS ?n)"
        assert Aggregation("count", None, "n").to_sparql() == \
            "(COUNT(*) AS ?n)"
