"""Tests for the direct QueryModel -> algebra compiler.

The compiler must be indistinguishable from the translate-then-parse round
trip: for any model, executing the compiled algebra and executing the
rendered SPARQL text must return the same result bag.
"""

import pytest

from repro.core import (CompilationError, InnerJoin, KnowledgeGraph,
                        LeftOuterJoin, OPTIONAL, OuterJoin, QueryModel,
                        compile_model, translate)
from repro.core.query_model import Aggregation
from repro.rdf import Graph, Literal, URIRef
from repro.sparql import Engine, algebra as alg, parse
from repro.sparql.expressions import VarExpr


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture(scope="module")
def engine():
    g = Graph("http://g")
    for i in range(12):
        g.add(uri("m%d" % i), uri("type"), uri("Film"))
        g.add(uri("m%d" % i), uri("starring"), uri("a%d" % (i % 4)))
        g.add(uri("m%d" % i), uri("year"), Literal(2000 + i))
    for i in range(4):
        if i != 2:
            g.add(uri("a%d" % i), uri("born"), uri("c%d" % (i % 2)))
        g.add(uri("a%d" % i), uri("label"), Literal("Actor %d" % i))
    return Engine(g)


@pytest.fixture
def kg():
    return KnowledgeGraph(graph_uri="http://g",
                          prefixes={"x": "http://x/"})


def assert_roundtrip_identical(engine, model):
    """Direct compilation and the text round trip must agree exactly."""
    direct = engine.query_model(model)
    text = engine.query(translate(model))
    assert sorted(map(repr, direct.rows)) == sorted(map(repr, text.rows))
    return direct


# ----------------------------------------------------------------------
# Structural compilation
# ----------------------------------------------------------------------
class TestStructure:
    def test_triples_become_bgp(self):
        model = QueryModel()
        model.add_prefixes({"x": "http://x/"})
        model.add_triple("?m", "x:starring", "?a")
        query = compile_model(model)
        assert isinstance(query, alg.Query)
        node = query.pattern
        assert isinstance(node, alg.Project) and node.variables is None
        assert isinstance(node.pattern, alg.BGP)
        s, p, o = node.pattern.triples[0]
        assert p == uri("starring")

    def test_scoped_triples_become_graph_pattern(self):
        model = QueryModel()
        model.add_prefixes({"x": "http://x/"})
        model.add_triple("?m", "x:starring", "?a", graph_uri="http://g2")
        node = compile_model(model).pattern.pattern
        assert isinstance(node, alg.GraphPattern)
        assert node.graph_uri == "http://g2"

    def test_aggregation_function_mapping(self):
        model = QueryModel()
        model.add_triple("?m", "<http://x/year>", "?y")
        model.set_aggregation(["m"], Aggregation("average", "y", "mean"))
        node = compile_model(model).pattern
        assert isinstance(node, alg.Project)
        assert node.variables == ["m", "mean"]
        group = node.pattern
        assert isinstance(group, alg.Group)
        agg = group.aggregates[0]
        assert agg.function == "avg"
        assert isinstance(agg.expression, VarExpr)

    def test_count_star(self):
        model = QueryModel()
        model.add_triple("?m", "<http://x/year>", "?y")
        model.set_aggregation([], Aggregation("count", None, "n"))
        group = compile_model(model).pattern.pattern
        assert group.aggregates[0].expression is None

    def test_having_compiles_against_alias(self):
        model = QueryModel()
        model.add_triple("?m", "<http://x/starring>", "?a")
        model.set_aggregation(["a"], Aggregation("count", "m", "n"))
        model.add_having("?n >= 3")
        group = compile_model(model).pattern.pattern
        assert group.having is not None
        assert "n" in group.having.variables()

    def test_modifier_order_matches_parser(self):
        model = QueryModel()
        model.add_triple("?m", "<http://x/year>", "?y")
        model.distinct = True
        model.order_keys = [("y", "desc")]
        model.limit = 5
        model.offset = 2
        node = compile_model(model).pattern
        assert isinstance(node, alg.Slice)
        assert isinstance(node.pattern, alg.OrderBy)
        assert isinstance(node.pattern.pattern, alg.Distinct)

    def test_from_graphs_carried(self):
        model = QueryModel()
        model.add_graph("http://g")
        model.add_triple("?s", "?p", "?o")
        assert compile_model(model).from_graphs == ["http://g"]

    def test_bad_term_raises(self):
        model = QueryModel()
        model.add_triple("?m", "nosuchprefix:oops", "?a")
        with pytest.raises(CompilationError):
            compile_model(model)

    def test_bad_expression_raises(self):
        model = QueryModel()
        model.add_triple("?m", "<http://x/year>", "?y")
        model.add_filter("?y >=")
        with pytest.raises(CompilationError):
            compile_model(model)

    def test_non_model_rejected(self):
        with pytest.raises(CompilationError):
            compile_model("SELECT * WHERE { ?s ?p ?o }")


# ----------------------------------------------------------------------
# Round-trip equivalence on real pipelines
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_seed_and_expand(self, engine, kg):
        frame = kg.feature_domain_range("x:starring", "m", "a") \
            .expand("a", [("x:born", "c"), ("x:label", "l", OPTIONAL)])
        assert_roundtrip_identical(engine, frame.query_model())

    def test_filters(self, engine, kg):
        frame = kg.feature_domain_range("x:starring", "m", "a") \
            .expand("m", [("x:year", "y")]) \
            .filter({"y": [">=2005"], "a": ["=<http://x/a1>"]})
        assert_roundtrip_identical(engine, frame.query_model())

    def test_group_having(self, engine, kg):
        frame = kg.feature_domain_range("x:starring", "m", "a") \
            .group_by(["a"]).count("m", "n", unique=True) \
            .filter({"n": [">=3"]})
        assert_roundtrip_identical(engine, frame.query_model())

    def test_inner_join_of_grouped(self, engine, kg):
        movies = kg.feature_domain_range("x:starring", "m", "a")
        counts = movies.group_by(["a"]).count("m", "n")
        assert_roundtrip_identical(
            engine, movies.join(counts, "a", InnerJoin).query_model())

    def test_left_outer_join(self, engine, kg):
        movies = kg.feature_domain_range("x:starring", "m", "a")
        births = kg.seed("a", "x:born", "c")
        assert_roundtrip_identical(
            engine, movies.join(births, "a", LeftOuterJoin).query_model())

    def test_full_outer_join(self, engine, kg):
        movies = kg.feature_domain_range("x:starring", "m", "a")
        births = kg.seed("a", "x:born", "c")
        assert_roundtrip_identical(
            engine, movies.join(births, "a", OuterJoin).query_model())

    def test_modifiers(self, engine, kg):
        frame = kg.feature_domain_range("x:starring", "m", "a") \
            .expand("m", [("x:year", "y")]) \
            .sort({"y": "desc"}).head(5, 2)
        assert_roundtrip_identical(engine, frame.query_model())

    def test_naive_strategy_models(self, engine, kg):
        from repro.core import NaiveGenerator
        frame = kg.feature_domain_range("x:starring", "m", "a") \
            .expand("a", [("x:born", "c")]).filter({"c": ["=<http://x/c0>"]})
        model = NaiveGenerator(kg.prefixes).generate(frame)
        assert_roundtrip_identical(engine, model)

    def test_compiled_tree_matches_parsed_tree_key(self, engine, kg):
        # For a flat pipeline the compiled algebra should be structurally
        # identical to parsing the rendered text (same plan-cache key).
        from repro.sparql import plan_key
        frame = kg.feature_domain_range("x:starring", "m", "a") \
            .filter({"a": ["=<http://x/a1>"]})
        model = frame.query_model()
        compiled = compile_model(model)
        parsed = parse(translate(model))
        assert plan_key(compiled) == plan_key(parsed)
