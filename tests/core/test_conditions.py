"""Unit tests for the filter-condition mini-language."""

import pytest

from repro.core.conditions import (ConditionError, condition_to_sparql,
                                   expression_variables, rename_variable,
                                   render_value)


class TestComparisons:
    def test_numeric_threshold(self):
        assert condition_to_sparql("n", ">=50") == "?n >= 50"

    def test_all_operators(self):
        for op in (">=", "<=", "!=", "=", ">", "<"):
            assert condition_to_sparql("x", op + "5") == "?x %s 5" % op

    def test_prefixed_name_value(self):
        assert condition_to_sparql("country", "=dbpr:United_States") == \
            "?country = dbpr:United_States"

    def test_angle_bracket_uri_value(self):
        assert condition_to_sparql("c", "=<http://x/a>") == "?c = <http://x/a>"

    def test_string_value_quoted(self):
        assert condition_to_sparql("name", "=some value") == \
            '?name = "some value"'

    def test_already_quoted_kept(self):
        assert condition_to_sparql("name", '="USA"') == '?name = "USA"'

    def test_numeric_condition_value(self):
        assert condition_to_sparql("n", 5) == "?n = 5"

    def test_variable_value(self):
        assert condition_to_sparql("a", "=?b") == "?a = ?b"

    def test_negative_number(self):
        assert condition_to_sparql("n", ">=-3") == "?n >= -3"


class TestFunctions:
    @pytest.mark.parametrize("name,rendered", [
        ("isURI", "isIRI(?c)"), ("isIRI", "isIRI(?c)"),
        ("isLiteral", "isLiteral(?c)"), ("isBlank", "isBlank(?c)"),
        ("bound", "bound(?c)"),
    ])
    def test_boolean_predicates(self, name, rendered):
        assert condition_to_sparql("c", name) == rendered

    def test_case_insensitive(self):
        assert condition_to_sparql("c", "isuri") == "isIRI(?c)"


class TestMembership:
    def test_in_list(self):
        assert condition_to_sparql("conf", "In(dblprc:vldb, dblprc:sigmod)") \
            == "?conf IN (dblprc:vldb, dblprc:sigmod)"

    def test_in_with_strings(self):
        result = condition_to_sparql("g", 'In("a", "b")')
        assert result == '?g IN ("a", "b")'

    def test_empty_in_rejected(self):
        with pytest.raises(ConditionError):
            condition_to_sparql("c", "In()")


class TestRawExpressions:
    def test_raw_passthrough(self):
        raw = 'regex(str(?actor_country), "USA")'
        assert condition_to_sparql("actor_country", raw) == raw

    def test_year_expression(self):
        raw = "year(xsd:dateTime(?date)) >= 2005"
        assert condition_to_sparql("date", raw) == raw

    def test_bare_value_means_equality(self):
        assert condition_to_sparql("c", "dbpr:X") == "?c = dbpr:X"

    def test_empty_condition_rejected(self):
        with pytest.raises(ConditionError):
            condition_to_sparql("c", "  ")

    def test_non_string_rejected(self):
        with pytest.raises(ConditionError):
            condition_to_sparql("c", ["list"])


class TestHelpers:
    def test_rename_variable_word_boundary(self):
        expr = "?actor = ?actor_country"
        assert rename_variable(expr, "actor", "star") == \
            "?star = ?actor_country"

    def test_expression_variables(self):
        assert expression_variables("?a >= 5 && bound(?b_c)") == ["a", "b_c"]

    def test_render_value_quotes_text(self):
        assert render_value("hello world") == '"hello world"'
        assert render_value("42") == "42"
        assert render_value("true") == "true"
