"""Unit tests for the RDFFrame API: lazy recording, immutability, columns."""

import pytest

from repro.core import (GroupedRDFFrame, INCOMING, InnerJoin, KnowledgeGraph,
                        OPTIONAL, OuterJoin, RDFFrame, RDFFrameError)
from repro.core import operators as ops


@pytest.fixture
def movies(kg):
    return kg.feature_domain_range("dbpp:starring", "movie", "actor")


class TestSeeds:
    def test_seed_records_one_operator(self, kg):
        frame = kg.seed("s", "dbpp:starring", "o")
        assert len(frame.operators) == 1
        assert isinstance(frame.operators[0], ops.SeedOperator)

    def test_seed_columns(self, kg):
        frame = kg.seed("movie", "dbpp:starring", "actor")
        assert frame.columns == ["movie", "actor"]

    def test_seed_with_concrete_object(self, kg):
        frame = kg.seed("movie", "rdf:type", "dbpo:Film")
        assert frame.columns == ["movie"]

    def test_seed_all_concrete_rejected(self, kg):
        with pytest.raises(ValueError):
            kg.seed("dbpr:M", "rdf:type", "dbpo:Film")

    def test_entities(self, kg):
        frame = kg.entities("dbpo:Film", "film")
        assert frame.columns == ["film"]

    def test_feature_domain_range_variable_predicate(self, kg):
        frame = kg.feature_domain_range("p", "s", "o")
        assert frame.columns == ["s", "p", "o"]

    def test_classes_and_freq_is_grouped(self, kg):
        frame = kg.classes_and_freq()
        assert isinstance(frame, GroupedRDFFrame)
        assert "frequency" in frame.columns


class TestLazyRecording:
    def test_builders_are_immutable(self, movies):
        before = len(movies.operators)
        movies.filter({"actor": ["isURI"]})
        assert len(movies.operators) == before

    def test_branching_pipelines_share_prefix(self, movies):
        cached = movies.cache()
        branch_a = cached.filter({"actor": ["isURI"]})
        branch_b = cached.group_by(["actor"]).count("movie", "n")
        assert branch_a.operators[:len(cached.operators)] == cached.operators
        assert branch_b.operators[:len(cached.operators)] == cached.operators

    def test_operator_queue_is_fifo(self, movies):
        frame = movies.expand("actor", [("dbpp:birthPlace", "country")]) \
            .filter({"country": ["isURI"]})
        names = [op.name for op in frame.operators]
        assert names == ["seed", "expand", "filter"]

    def test_no_execution_without_execute(self, kg, engine):
        executed_before = engine.queries_executed
        kg.feature_domain_range("dbpp:starring", "movie", "actor") \
            .expand("actor", [("dbpp:birthPlace", "c")]) \
            .filter({"c": ["isURI"]})
        assert engine.queries_executed == executed_before


class TestExpand:
    def test_adds_column(self, movies):
        frame = movies.expand("actor", [("dbpp:birthPlace", "country")])
        assert frame.columns == ["movie", "actor", "country"]

    def test_multiple_predicates_in_one_call(self, movies):
        frame = movies.expand("actor", [("dbpp:birthPlace", "c"),
                                        ("rdfs:label", "n")])
        assert [op.name for op in frame.operators] == \
            ["seed", "expand", "expand"]

    def test_direction_flag(self, movies):
        frame = movies.expand("actor", [("dbpp:starring", "m2", INCOMING)])
        operator = frame.operators[-1]
        assert operator.direction == "in"

    def test_optional_flag(self, movies):
        frame = movies.expand("movie", [("dbpo:genre", "g", OPTIONAL)])
        assert frame.operators[-1].is_optional

    def test_direction_and_optional_combined(self, movies):
        frame = movies.expand("actor",
                              [("dbpp:starring", "m2", INCOMING, OPTIONAL)])
        operator = frame.operators[-1]
        assert operator.direction == "in" and operator.is_optional

    def test_unknown_source_column_rejected(self, movies):
        with pytest.raises(RDFFrameError):
            movies.expand("nope", [("dbpp:birthPlace", "c")])

    def test_bad_spec_rejected(self, movies):
        with pytest.raises(RDFFrameError):
            movies.expand("actor", [("dbpp:birthPlace",)])

    def test_unknown_flag_rejected(self, movies):
        with pytest.raises(RDFFrameError):
            movies.expand("actor", [("dbpp:birthPlace", "c", "sideways")])


class TestFilter:
    def test_dict_conditions(self, movies):
        frame = movies.filter({"actor": ["isURI", "=dbpr:ActorA"]})
        assert len(frame.operators[-1].conditions) == 2

    def test_scalar_condition_allowed(self, movies):
        frame = movies.filter({"actor": "=dbpr:ActorA"})
        assert frame.operators[-1].conditions == [("actor", "=dbpr:ActorA")]

    def test_pair_list_conditions(self, movies):
        frame = movies.filter([("actor", "isURI")])
        assert frame.operators[-1].conditions == [("actor", "isURI")]

    def test_empty_filter_rejected(self, movies):
        with pytest.raises(RDFFrameError):
            movies.filter({})

    def test_unknown_column_rejected(self, movies):
        with pytest.raises(RDFFrameError):
            movies.filter({"nope": [">=5"]})


class TestGrouping:
    def test_group_by_returns_grouped_frame(self, movies):
        grouped = movies.group_by(["actor"])
        assert isinstance(grouped, GroupedRDFFrame)

    def test_group_by_accepts_string(self, movies):
        assert movies.group_by("actor").columns == ["actor"]

    def test_count_adds_column(self, movies):
        grouped = movies.group_by(["actor"]).count("movie", "n")
        assert grouped.columns == ["actor", "n"]

    def test_count_unique_flag(self, movies):
        grouped = movies.group_by(["actor"]).count("movie", "n", unique=True)
        assert grouped.operators[-1].distinct

    def test_aggregation_functions(self, movies):
        grouped = movies.group_by(["actor"])
        for method in ("sum", "average", "min", "max", "sample"):
            out = getattr(grouped, method)("movie")
            assert out.operators[-1].function in (
                method, "average")

    def test_default_alias(self, movies):
        grouped = movies.group_by(["actor"]).sum("movie")
        assert "movie_sum" in grouped.columns

    def test_whole_frame_count(self, movies):
        frame = movies.count("movie", "total", unique=True)
        assert frame.columns == ["total"]
        assert isinstance(frame.operators[-1], ops.AggregateAllOperator)

    def test_whole_frame_aggregate(self, movies):
        frame = movies.aggregate("max", "movie")
        assert frame.columns == ["movie_max"]


class TestJoinSortHead:
    def test_join_merges_columns(self, kg, movies):
        other = kg.seed("actor", "dbpp:birthPlace", "country")
        joined = movies.join(other, "actor")
        assert joined.columns == ["movie", "actor", "country"]

    def test_join_type_shorthand(self, kg, movies):
        other = kg.seed("actor", "dbpp:birthPlace", "country")
        joined = movies.join(other, "actor", OuterJoin)
        assert joined.operators[-1].join_type == "outer"

    def test_join_new_column_rename(self, kg, movies):
        other = kg.seed("person", "dbpp:birthPlace", "country")
        joined = movies.join(other, "actor", other_column="person",
                             new_column="who")
        assert "who" in joined.columns
        assert "actor" not in joined.columns
        assert "person" not in joined.columns

    def test_join_unknown_column_rejected(self, kg, movies):
        other = kg.seed("actor", "dbpp:birthPlace", "country")
        with pytest.raises(RDFFrameError):
            movies.join(other, "nope")

    def test_join_bad_type_rejected(self, kg, movies):
        other = kg.seed("actor", "dbpp:birthPlace", "country")
        with pytest.raises(ValueError):
            movies.join(other, "actor", join_type="cross")

    def test_sort_dict_and_pairs(self, movies):
        assert movies.sort({"movie": "asc"}).operators[-1].keys == \
            [("movie", "asc")]
        assert movies.sort([("movie", "DESC")]).operators[-1].keys == \
            [("movie", "desc")]

    def test_sort_bad_order_rejected(self, movies):
        with pytest.raises(ValueError):
            movies.sort({"movie": "upwards"})

    def test_head(self, movies):
        frame = movies.head(10, 5)
        assert frame.operators[-1].limit == 10
        assert frame.operators[-1].offset == 5

    def test_head_negative_rejected(self, movies):
        with pytest.raises(ValueError):
            movies.head(-1)

    def test_select_cols(self, movies):
        frame = movies.select_cols(["movie"])
        assert frame.columns == ["movie"]

    def test_select_unknown_rejected(self, movies):
        with pytest.raises(RDFFrameError):
            movies.select_cols(["nope"])

    def test_cache_is_noop_marker(self, movies):
        assert movies.cache().columns == movies.columns

    def test_repr(self, movies):
        assert "RDFFrame" in repr(movies)
