"""Unit tests for the logical-plan layer: optimizer passes, pass stats,
plan keys, and the engine's plan cache."""

import pytest

from repro.rdf import Dataset, Graph, Literal, TermDictionary, URIRef, Variable
from repro.sparql import Engine, parse, plan_key
from repro.sparql import algebra as alg
from repro.sparql.expressions import AndExpr, CompareExpr, ConstExpr, VarExpr
from repro.sparql.plan import (bgp_merge, filter_pushdown, make_join_ordering,
                               optimize_plan, projection_pruning)

PFX = "PREFIX x: <http://x/>\n"


def uri(name):
    return URIRef("http://x/" + name)


def var(name):
    return Variable(name)


def bgp(*triples):
    return alg.BGP(list(triples))


def gt(expression_var, value):
    return CompareExpr(">", VarExpr(expression_var),
                       ConstExpr(Literal(value)))


@pytest.fixture
def graph():
    d = TermDictionary()
    g = Graph("http://g", dictionary=d)
    for i in range(20):
        g.add(uri("m%d" % i), uri("starring"), uri("a%d" % (i % 4)))
        g.add(uri("m%d" % i), uri("year"), Literal(1990 + i))
    g.add(uri("m0"), uri("rare"), uri("thing"))
    return g


# ----------------------------------------------------------------------
# FilterPushdown
# ----------------------------------------------------------------------
class TestFilterPushdown:
    def test_pushes_into_join_side(self):
        left = bgp((var("m"), uri("year"), var("y")))
        right = bgp((var("m"), uri("starring"), var("a")))
        node = alg.Filter(gt("y", 2000), alg.Join(left, right))
        rewritten, changes = filter_pushdown(node)
        assert changes == 1
        assert isinstance(rewritten, alg.Join)
        assert isinstance(rewritten.left, alg.Filter)
        assert isinstance(rewritten.left.pattern, alg.BGP)
        assert isinstance(rewritten.right, alg.BGP)

    def test_splits_conjunction_across_sides(self):
        left = bgp((var("m"), uri("year"), var("y")))
        right = bgp((var("a"), uri("born"), var("c")))
        both = AndExpr(gt("y", 2000), gt("c", 1))
        node = alg.Filter(both, alg.Join(left, right))
        rewritten, changes = filter_pushdown(node)
        assert changes == 1
        assert isinstance(rewritten, alg.Join)
        assert isinstance(rewritten.left, alg.Filter)
        assert isinstance(rewritten.right, alg.Filter)

    def test_shared_variable_filter_stays(self):
        # ?m is in scope on both sides: the filter must not move.
        left = bgp((var("m"), uri("year"), var("y")))
        right = bgp((var("m"), uri("starring"), var("a")))
        node = alg.Filter(gt("m", 0), alg.Join(left, right))
        rewritten, changes = filter_pushdown(node)
        assert changes == 0
        assert isinstance(rewritten, alg.Filter)

    def test_left_join_pushes_left_only(self):
        left = bgp((var("m"), uri("year"), var("y")))
        right = bgp((var("m"), uri("starring"), var("a")))
        node = alg.Filter(gt("a", 0), alg.LeftJoin(left, right))
        rewritten, changes = filter_pushdown(node)
        # ?a lives on the optional side: pushing would change which left
        # rows survive, so the filter stays put.
        assert changes == 0
        assert isinstance(rewritten, alg.Filter)

        node = alg.Filter(gt("y", 2000), alg.LeftJoin(left, right))
        rewritten, changes = filter_pushdown(node)
        assert changes == 1
        assert isinstance(rewritten, alg.LeftJoin)
        assert isinstance(rewritten.left, alg.Filter)

    def test_distributes_into_union(self):
        left = bgp((var("m"), uri("year"), var("y")))
        right = bgp((var("m"), uri("age"), var("y")))
        node = alg.Filter(gt("y", 2000), alg.Union(left, right))
        rewritten, changes = filter_pushdown(node)
        assert changes == 1
        assert isinstance(rewritten, alg.Union)
        assert isinstance(rewritten.left, alg.Filter)
        assert isinstance(rewritten.right, alg.Filter)


# ----------------------------------------------------------------------
# ProjectionPruning
# ----------------------------------------------------------------------
class TestProjectionPruning:
    def test_collapses_adjacent_projections(self):
        inner = alg.Project(bgp((var("m"), uri("starring"), var("a"))),
                            ["m", "a"])
        node = alg.Project(inner, ["m"])
        rewritten, changes = projection_pruning(node)
        assert changes >= 1
        assert isinstance(rewritten, alg.Project)
        assert rewritten.variables == ["m"]
        assert isinstance(rewritten.pattern, alg.BGP)

    def test_removes_noop_projection_below_root(self):
        pattern = bgp((var("m"), uri("starring"), var("a")))
        noop = alg.Project(pattern, ["m", "a"])  # scope is exactly [m, a]
        root = alg.Project(alg.Join(noop, bgp((var("m"), uri("year"),
                                               var("y")))), ["m"])
        rewritten, changes = projection_pruning(root)
        assert changes == 1
        assert isinstance(rewritten.pattern, alg.Join)
        assert isinstance(rewritten.pattern.left, alg.BGP)

    def test_root_projection_protected(self):
        pattern = bgp((var("m"), uri("starring"), var("a")))
        root = alg.Project(pattern, ["m", "a"])  # a no-op, but the root
        rewritten, changes = projection_pruning(root)
        assert changes == 0
        assert isinstance(rewritten, alg.Project)

    def test_select_star_never_touched(self):
        # SELECT * subqueries carry the naive baseline's deliberate
        # materialization cost; the pruner must leave them alone.
        inner = alg.Project(bgp((var("m"), uri("starring"), var("a"))), None)
        root = alg.Project(alg.Join(inner, bgp((var("m"), uri("year"),
                                                var("y")))), None)
        rewritten, changes = projection_pruning(root)
        assert changes == 0
        assert isinstance(rewritten.pattern.left, alg.Project)

    def test_distinct_distinct_collapses(self):
        node = alg.Distinct(alg.Distinct(
            alg.Project(bgp((var("m"), uri("year"), var("y"))), ["m"])))
        rewritten, changes = projection_pruning(node)
        assert changes == 1
        assert isinstance(rewritten, alg.Distinct)
        assert isinstance(rewritten.pattern, alg.Project)


# ----------------------------------------------------------------------
# BGPMerge
# ----------------------------------------------------------------------
class TestBGPMerge:
    def test_merges_joined_bgps(self):
        t1 = (var("m"), uri("starring"), var("a"))
        t2 = (var("m"), uri("year"), var("y"))
        node = alg.Join(bgp(t1), bgp(t2))
        rewritten, changes = bgp_merge(node)
        assert changes == 1
        assert isinstance(rewritten, alg.BGP)
        assert rewritten.triples == [t1, t2]

    def test_merge_is_recursive(self):
        t = (var("m"), uri("year"), var("y"))
        node = alg.Join(alg.Join(bgp(t), bgp(t)), bgp(t))
        rewritten, changes = bgp_merge(node)
        assert changes == 2
        assert isinstance(rewritten, alg.BGP)
        assert len(rewritten.triples) == 3

    def test_does_not_merge_across_graph_scope(self):
        t = (var("m"), uri("year"), var("y"))
        node = alg.Join(bgp(t), alg.GraphPattern("http://g2", bgp(t)))
        rewritten, changes = bgp_merge(node)
        assert changes == 0
        assert isinstance(rewritten, alg.Join)


# ----------------------------------------------------------------------
# JoinOrdering (plan-time)
# ----------------------------------------------------------------------
class TestJoinOrdering:
    def test_orders_by_selectivity(self, graph):
        # 'rare' has one triple; 'starring' has twenty.  The rare pattern
        # must be matched first.
        common = (var("m"), uri("starring"), var("a"))
        rare = (var("m"), uri("rare"), var("t"))
        node = bgp(common, rare)
        ordering = make_join_ordering(graph)
        rewritten, changes = ordering(node)
        assert changes == 1
        assert rewritten.triples[0] == rare

    def test_recurses_into_graph_scope(self, graph):
        dataset = Dataset()
        dataset.add_graph(graph)
        common = (var("m"), uri("starring"), var("a"))
        rare = (var("m"), uri("rare"), var("t"))
        node = alg.GraphPattern("http://g", bgp(common, rare))
        ordering = make_join_ordering(None, dataset)
        rewritten, changes = ordering(node)
        assert changes == 1
        assert rewritten.pattern.triples[0] == rare

    def test_input_tree_not_mutated(self, graph):
        common = (var("m"), uri("starring"), var("a"))
        rare = (var("m"), uri("rare"), var("t"))
        node = bgp(common, rare)
        make_join_ordering(graph)(node)
        assert node.triples == [common, rare]


# ----------------------------------------------------------------------
# The pipeline + plan objects
# ----------------------------------------------------------------------
class TestOptimizePlan:
    def test_records_per_pass_stats(self, graph):
        query = parse(PFX + """
            SELECT ?m WHERE {
                ?m x:starring ?a . ?m x:rare ?t .
                FILTER(?y > 2000)
                { SELECT ?m ?y WHERE { ?m x:year ?y } }
            }""")
        plan = optimize_plan(query, graph=graph)
        names = [s.name for s in plan.pass_stats]
        assert names == ["FilterPushdown", "ProjectionPruning", "BGPMerge",
                         "AggregatePushdown", "LimitPushdown", "JoinOrdering",
                         "CostBasedJoinStrategy"]
        assert plan.total_changes >= 3  # push + prune + merge + order
        assert all(s.seconds >= 0 for s in plan.pass_stats)

    def test_passes_feed_each_other(self, graph):
        # Pruning the no-op projection exposes Join(BGP, BGP) to BGPMerge,
        # whose output JoinOrdering then reorders — one flat ordered BGP.
        query = parse(PFX + """
            SELECT ?m WHERE {
                ?m x:starring ?a .
                { SELECT ?m ?y WHERE { ?m x:year ?y } }
            }""")
        plan = optimize_plan(query, graph=graph)
        node = plan.query.pattern
        assert isinstance(node, alg.Project)
        assert isinstance(node.pattern, alg.BGP)
        assert len(node.pattern.triples) == 2

    def test_explain_mentions_passes(self, graph):
        plan = optimize_plan(parse(PFX + "SELECT ?m WHERE { ?m x:year ?y }"),
                             graph=graph)
        text = plan.explain()
        assert "FilterPushdown" in text and "JoinOrdering" in text


# ----------------------------------------------------------------------
# Plan keys + the engine's plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_key_normalizes_surface_text(self):
        a = parse(PFX + "SELECT ?m WHERE { ?m x:year ?y }")
        b = parse("PREFIX p: <http://x/>\nSELECT  ?m\nWHERE{?m p:year ?y.}")
        assert plan_key(a) == plan_key(b)

    def test_key_distinguishes_structure(self):
        a = parse(PFX + "SELECT ?m WHERE { ?m x:year ?y }")
        b = parse(PFX + "SELECT DISTINCT ?m WHERE { ?m x:year ?y }")
        assert plan_key(a) != plan_key(b)

    def test_cache_hit_on_repeat(self, graph):
        engine = Engine(graph)
        q = PFX + "SELECT ?m WHERE { ?m x:starring ?a . ?m x:rare ?t }"
        first = engine.query(q)
        assert engine.plan_cache_misses == 1
        second = engine.query(q)
        assert engine.plan_cache_hits == 1
        assert engine.last_plan.executions == 2
        assert sorted(map(repr, first.rows)) == sorted(map(repr, second.rows))

    def test_cache_invalidated_by_mutation(self, graph):
        engine = Engine(graph)
        q = PFX + "SELECT ?m WHERE { ?m x:starring ?a }"
        engine.query(q)
        graph.add(uri("m99"), uri("starring"), uri("a0"))
        result = engine.query(q)
        assert engine.plan_cache_hits == 0
        assert engine.plan_cache_misses == 2
        assert len(result) == 21

    def test_cache_respects_size_limit(self, graph):
        engine = Engine(graph, plan_cache_size=2)
        for i in range(4):
            engine.query(PFX + "SELECT ?m WHERE { ?m x:year %d }" % i)
        assert len(engine._plan_cache) == 2

    def test_cache_disabled(self, graph):
        engine = Engine(graph, plan_cache_size=0)
        q = PFX + "SELECT ?m WHERE { ?m x:year ?y }"
        engine.query(q)
        engine.query(q)
        assert engine.plan_cache_hits == 0

    def test_optimize_false_skips_join_ordering(self, graph):
        engine = Engine(graph, optimize=False)
        q = PFX + "SELECT ?m WHERE { ?m x:starring ?a . ?m x:rare ?t }"
        plan = engine.plan(q)
        assert "JoinOrdering" not in [s.name for s in plan.pass_stats]
        # The un-reordered pattern keeps its textual order.
        node = plan.query.pattern.pattern
        assert node.triples[0][1] == uri("starring")

    def test_engine_explain_optimized(self, graph):
        engine = Engine(graph)
        text = engine.explain(
            PFX + "SELECT ?m WHERE { ?m x:starring ?a . ?m x:rare ?t }",
            optimized=True)
        assert "JoinOrdering" in text
