"""Differential fuzzing: every plane, plus the cache, returns one bag.

≥200 seeded generated queries (see :mod:`queryfuzz`) run across the four
execution planes — reference (seed dict evaluator), materialized
columnar, streaming, vectorized — and must return bag-identical results.
The serving tier's result cache is then treated as a fifth plane:
cache-cold and cache-warm submissions must agree with the engine truth,
including across interleaved graph mutations (the stale-read hunt).

A failing seed shrinks structurally (dropping optionals, filters,
modifiers, patterns while the disagreement persists) and the test dumps
the minimal reproducing SPARQL text, so CI failures replay locally from
the message alone.  Generation is PYTHONHASHSEED-independent — asserted
here by re-rendering under two different hash seeds in subprocesses.
"""

import os
import random
import subprocess
import sys

import pytest

from queryfuzz import generate, mutate, shrink
from repro.data.loader import build_dataset
from repro.sparql import Engine, ResultCache
from repro.sparql.server import QueryServer

SCALE = 0.03
N_SEEDS = 220
CHUNK = 10


@pytest.fixture(scope="module")
def dataset():
    # use_cache=False: nothing here may leak into (or mutate) the
    # memoized datasets other suites share.
    return build_dataset(scale=SCALE, include_yago=False, use_cache=False)


@pytest.fixture(scope="module")
def planes(dataset):
    return {
        "reference": Engine(dataset, columnar=False),
        "materialized": Engine(dataset, streaming=False, vectorize=False),
        "streaming": Engine(dataset, streaming=True, vectorize=False),
        "vectorized": Engine(dataset, streaming=True, vectorize=True),
    }


def named_bag(result):
    """Order-free, variable-name-keyed bag of a result set."""
    return sorted(
        tuple(sorted((var, repr(term))
                     for var, term in zip(result.variables, row)))
        for row in result.rows)


def _planes_disagree(spec, planes):
    """None if all planes agree, else a short description."""
    text = spec.render()
    try:
        bags = {name: named_bag(engine.query(text))
                for name, engine in sorted(planes.items())}
    except Exception as exc:  # generator emitted something invalid
        return "raised %s: %s" % (type(exc).__name__, exc)
    reference = bags["reference"]
    for name, bag in sorted(bags.items()):
        if bag != reference:
            return "%s returned %d rows, reference %d" % (
                name, len(bag), len(reference))
    return None


@pytest.mark.parametrize("start", range(0, N_SEEDS, CHUNK))
def test_planes_agree_on_fuzzed_queries(planes, start):
    for seed in range(start, start + CHUNK):
        spec = generate(seed)
        failure = _planes_disagree(spec, planes)
        if failure is None:
            continue
        minimal = shrink(
            spec, lambda s: _planes_disagree(s, planes) is not None)
        pytest.fail(
            "fuzz seed %d: %s\n--- minimal reproducing query ---\n%s"
            % (seed, failure, minimal.render()))


def test_generation_is_hash_seed_independent():
    """generate(seed) renders identical text under any PYTHONHASHSEED."""
    script = (
        "import sys; sys.path.insert(0, %r)\n"
        "from queryfuzz import generate\n"
        "for seed in range(60):\n"
        "    sys.stdout.write(generate(seed).render())\n"
        "    sys.stdout.write('\\n=====\\n')\n"
        % os.path.dirname(os.path.abspath(__file__)))
    outputs = []
    for hash_seed in ("17", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, env=env, check=True)
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]


def test_cache_cold_vs_warm_matches_engine_truth(dataset, planes):
    """Cold (executes) and warm (served from cache) submissions both
    match the reference plane, query by query."""
    cache = ResultCache(max_entries=1024)
    with QueryServer(Engine(dataset), workers=2,
                     result_cache=cache) as server:
        for seed in range(0, 60):
            text = generate(seed).render()
            cold = server.submit(text).result()
            warm = server.submit(text).result()
            truth = named_bag(planes["reference"].query(text))
            assert named_bag(cold) == truth, text
            assert named_bag(warm) == truth, text
    assert server.stats.cache_hits > 0
    assert server.stats.cache_misses > 0


def test_cache_stays_fresh_across_interleaved_mutations():
    """Repeated fuzzed queries against a mutating graph: the cached
    server must always agree with an uncached reference engine queried
    at the same moment — a stale entry served after a mutation fails
    here immediately."""
    ds = build_dataset(scale=0.02, include_yago=False, use_cache=False)
    graph = ds.graph("http://dbpedia.org")
    cache = ResultCache(max_entries=256)
    control = Engine(ds, columnar=False)
    rng = random.Random(987)
    hits_before_any_mutation = None
    with QueryServer(Engine(ds), workers=2,
                     result_cache=cache) as server:
        for step in range(36):
            text = generate(rng.randrange(8)).render()
            got = server.submit(text).result()
            want = control.query(text)
            assert named_bag(got) == named_bag(want), \
                "stale or wrong rows after %d steps for:\n%s" % (step, text)
            if step % 4 == 3:
                if hits_before_any_mutation is None:
                    hits_before_any_mutation = server.stats.cache_hits
                mutate(graph, rng, tag=step)
    # The cache did real work between mutations...
    assert server.stats.cache_hits > 0
    # ...and kept hitting after the first mutation epoch ended (fresh
    # entries under the new fingerprint, not a permanently-cold cache).
    assert server.stats.cache_hits > (hits_before_any_mutation or 0)
