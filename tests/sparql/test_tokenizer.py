"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql.tokenizer import Token, TokenizeError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind != "EOF"]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != "EOF"]


class TestBasicTokens:
    def test_iri(self):
        assert kinds("<http://x/a>") == ["IRI"]

    def test_variable(self):
        tokens = tokenize("?movie $actor")
        assert [t.kind for t in tokens[:2]] == ["VAR", "VAR"]

    def test_pname(self):
        assert kinds("dbpp:starring") == ["PNAME"]

    def test_pname_with_dots_and_dashes(self):
        assert values("a:b.c-d") == ["a:b.c-d"]

    def test_pname_trailing_dot_is_terminator(self):
        tokens = values("dbpr:United_States.")
        assert tokens == ["dbpr:United_States", "."]

    def test_keywords_uppercased(self):
        tokens = tokenize("select Where FILTER")
        assert all(t.kind == "KEYWORD" for t in tokens[:3])
        assert tokens[0].value == "SELECT"

    def test_a_is_keyword(self):
        assert tokenize("a")[0] == Token("KEYWORD", "A", 0, 1)

    def test_function_name_is_name(self):
        assert tokenize("regex")[0].kind == "NAME"

    def test_numbers(self):
        assert kinds("42 3.14 .5 1e6") == ["NUMBER"] * 4

    def test_strings(self):
        assert kinds('"hello" \'single\' """triple"""') == ["STRING"] * 3

    def test_string_with_escape(self):
        assert values(r'"a\"b"') == [r'"a\"b"']

    def test_operators(self):
        assert values("&& || != <= >= = < > ! + - * /") == \
            ["&&", "||", "!=", "<=", ">=", "=", "<", ">", "!", "+", "-",
             "*", "/"]

    def test_punctuation(self):
        assert kinds("{ } ( ) . , ;") == ["PUNCT"] * 7

    def test_datatype_marker(self):
        assert kinds('"5"^^<http://x>') == ["STRING", "DTYPE", "IRI"]

    def test_language_tag(self):
        assert kinds('"chat"@fr') == ["STRING", "LANGTAG"]

    def test_comment_skipped(self):
        assert kinds("?x # comment here\n?y") == ["VAR", "VAR"]

    def test_line_numbers(self):
        tokens = tokenize("?x\n?y")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_unexpected_character(self):
        with pytest.raises(TokenizeError):
            tokenize("?x ~ ?y")


class TestDisambiguation:
    def test_less_than_vs_iri(self):
        # '< ' followed by space cannot be an IRI.
        assert values("?x < 5") == ["?x", "<", "5"]

    def test_leq_operator(self):
        assert values("?x <= ?y") == ["?x", "<=", "?y"]

    def test_iri_wins_when_closed(self):
        assert kinds("FROM <http://g>") == ["KEYWORD", "IRI"]

    def test_star_in_select(self):
        assert values("SELECT *") == ["SELECT", "*"]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"
