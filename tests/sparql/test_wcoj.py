"""Behavioral suite for cost-based planning + generic (worst-case-optimal)
join over cyclic BGPs.

Covers, on top of the corpus differential in ``test_joins_sip.py``:

* bag-identical rows for the cyclic corpus queries across the wcoj
  engine (both executors), the ``wcoj=False`` intersect plane, and the
  dict-based reference evaluator, with ``wcoj_steps > 0`` proving the
  generic-join operator actually ran;
* ``synopsis_builds`` accounting: lazily built once, memoized across
  queries, rebuilt after a mutation;
* :class:`~repro.sparql.optimizer.GraphStatistics` freshness — a
  member mutation inside a :class:`~repro.rdf.dataset.GraphUnion` that
  keeps the total size unchanged must still flip ``fresh()`` (the
  version-counter regression this PR fixes);
* aggregate pushdown through the wcoj decomposition: COUNT over a
  cyclic BGP folds inside the generic join (``accumulator_rows == 0``)
  and still matches the reference evaluator;
* planner determinism: cost estimates and chosen plans identical across
  ``PYTHONHASHSEED`` values (subprocess) and across pattern input-order
  permutations (in-process);
* the safety valves (deadline, row budget, cancel token) fire on wcoj
  plans exactly as they do on binary-join plans.
"""

import itertools
import os
import subprocess
import sys
import textwrap

import pytest

from repro.data import DBPEDIA_URI, build_dataset
from repro.rdf import Graph, GraphUnion, URIRef
from repro.sparql import (CancelToken, Engine, QueryCancelled, QueryTimeout,
                          RowBudgetExceeded, parse)
from repro.sparql.optimizer import (GraphStatistics, estimate_join,
                                    estimate_wcoj, generic_join_order)
from repro.sparql.plan import optimize_plan
from repro.workload import JOIN_QUERIES, get_join_query

PFX = """
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
"""

CYCLIC_KEYS = [q.key for q in JOIN_QUERIES if q.expect == "wcoj"]


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale=0.05)


@pytest.fixture(scope="module")
def engines(dataset):
    return {
        "reference": Engine(dataset, columnar=False),
        "intersect": Engine(dataset, wcoj=False),
        "wcoj/streaming": Engine(dataset, streaming=True),
        "wcoj/materialized": Engine(dataset, streaming=False),
    }


def row_bag(result):
    order = sorted(range(len(result.variables)),
                   key=lambda i: result.variables[i])
    return sorted(tuple(repr(row[i]) for i in order) for row in result.rows)


def collaborator_graph(n=120, hubs=16):
    """A small deterministic graph whose degree distribution is heavy
    enough that the cost gate routes cyclic self-joins to generic join:
    a sparse ring of local collaborations plus ``hubs`` members connected
    to everyone.  Built with explicit insertion order (no hashing
    involved), so its synopses are PYTHONHASHSEED-independent."""
    g = Graph("urn:collab")
    collab = URIRef("urn:collab#with")
    people = [URIRef("urn:p%03d" % i) for i in range(n)]
    for i in range(n):
        for j in (1, 2, 3):
            a, b = people[i], people[(i + j) % n]
            g.add(a, collab, b)
            g.add(b, collab, a)
    for h in range(min(hubs, n)):
        for i in range(n):
            if i != h:
                g.add(people[h], collab, people[i])
                g.add(people[i], collab, people[h])
    return g


TRIANGLE = ("SELECT ?a ?b ?c WHERE { ?a <urn:collab#with> ?b . "
            "?b <urn:collab#with> ?c . ?a <urn:collab#with> ?c }")


class TestCyclicCorpusDifferential:
    @pytest.fixture(params=CYCLIC_KEYS)
    def cyclic_query(self, request):
        return get_join_query(request.param)

    def test_all_planes_agree_on_cyclic_shapes(self, engines, cyclic_query):
        want = row_bag(engines["reference"].query(
            cyclic_query.sparql, default_graph_uri=DBPEDIA_URI))
        assert want, "cyclic query %s empty at test scale" % cyclic_query.key
        for key in ("intersect", "wcoj/streaming", "wcoj/materialized"):
            got = row_bag(engines[key].query(
                cyclic_query.sparql, default_graph_uri=DBPEDIA_URI))
            assert got == want, "%s disagrees on %s" % (key, cyclic_query.key)

    def test_wcoj_steps_prove_the_operator_ran(self, engines, cyclic_query):
        engines["wcoj/streaming"].query(cyclic_query.sparql,
                                        default_graph_uri=DBPEDIA_URI)
        assert engines["wcoj/streaming"].last_stats.wcoj_steps > 0
        engines["intersect"].query(cyclic_query.sparql,
                                   default_graph_uri=DBPEDIA_URI)
        assert engines["intersect"].last_stats.wcoj_steps == 0


class TestSynopsisAccounting:
    def test_lazy_build_then_memoized(self):
        engine = Engine(collaborator_graph())
        engine.query(TRIANGLE)
        assert engine.last_stats.wcoj_steps > 0
        assert engine.last_stats.synopsis_builds > 0
        engine.query(TRIANGLE.replace("?c }", "?c . ?b <urn:collab#with> ?a }"))
        assert engine.last_stats.synopsis_builds == 0

    def test_mutation_rebuilds_synopses(self):
        graph = collaborator_graph()
        engine = Engine(graph)
        engine.query(TRIANGLE)
        graph.add(URIRef("urn:new"), URIRef("urn:collab#with"),
                  URIRef("urn:p000"))
        engine.query(TRIANGLE)
        assert engine.last_stats.synopsis_builds > 0


class TestStatisticsFreshness:
    def test_graph_mutation_flips_fresh(self):
        graph = collaborator_graph(20)
        stats = GraphStatistics(graph)
        assert stats.fresh()
        graph.add(URIRef("urn:x"), URIRef("urn:y"), URIRef("urn:z"))
        assert not stats.fresh()

    def test_union_member_equal_size_replace_detected(self):
        """The regression: a replace inside a union member keeps both the
        member's and the union's ``len()`` unchanged, so the old size
        guard reported stale statistics as fresh."""
        a, b = Graph("urn:a"), Graph("urn:b")
        p = URIRef("urn:p")
        a.add(URIRef("urn:s1"), p, URIRef("urn:o1"))
        b.add(URIRef("urn:s2"), p, URIRef("urn:o2"))
        union = GraphUnion([a, b])
        stats = GraphStatistics(union)
        assert stats.fresh()
        size = len(union)
        b.remove(URIRef("urn:s2"), p, URIRef("urn:o2"))
        b.add(URIRef("urn:s3"), p, URIRef("urn:o3"))
        assert len(union) == size
        assert not stats.fresh()


class TestAggregatePushdown:
    COUNT = PFX + """
    SELECT ?a (COUNT(*) AS ?n) WHERE {
      ?a dbpp:collaborator ?b .
      ?b dbpp:collaborator ?c .
      ?a dbpp:collaborator ?c .
    } GROUP BY ?a
    """

    def test_count_folds_inside_the_decomposition(self, engines):
        want = row_bag(engines["reference"].query(
            self.COUNT, default_graph_uri=DBPEDIA_URI))
        assert want
        got = row_bag(engines["wcoj/streaming"].query(
            self.COUNT, default_graph_uri=DBPEDIA_URI))
        assert got == want
        stats = engines["wcoj/streaming"].last_stats
        assert stats.wcoj_steps > 0
        # The join's rows were never materialized into the hash
        # aggregation: counting rode the generic-join levels.
        assert stats.accumulator_rows == 0


class TestPlannerDeterminism:
    def patterns(self, text):
        query = parse(text)
        node = query.pattern
        while not hasattr(node, "triples"):
            node = node.children()[0]
        return query, node.triples

    def explain_fingerprint(self, graph, text):
        plan = optimize_plan(parse(text), graph=graph)
        return [line for line in plan.explain().splitlines()
                if not line.startswith("--")]

    def test_estimates_invariant_under_pattern_permutation(self):
        graph = collaborator_graph()
        parts = ["?a <urn:collab#with> ?b", "?b <urn:collab#with> ?c",
                 "?a <urn:collab#with> ?c"]
        seen_nl, seen_wcoj, seen_order = set(), set(), set()
        for perm in itertools.permutations(parts):
            text = "SELECT * WHERE { %s }" % " . ".join(perm)
            _, triples = self.patterns(text)
            stats = GraphStatistics(graph)
            cost_nl, _ = estimate_join(triples, stats)
            order = generic_join_order(triples, stats)
            seen_nl.add(round(cost_nl, 9))
            seen_order.add(tuple(order))
            seen_wcoj.add(round(estimate_wcoj(triples, order, stats), 9))
        assert len(seen_nl) == 1
        assert len(seen_wcoj) == 1
        assert len(seen_order) == 1

    def test_chosen_plan_invariant_under_pattern_permutation(self):
        graph = collaborator_graph()
        parts = ["?a <urn:collab#with> ?b", "?b <urn:collab#with> ?c",
                 "?c <urn:collab#with> ?d", "?d <urn:collab#with> ?a",
                 "?a <urn:collab#with> ?c"]
        fingerprints = {
            tuple(self.explain_fingerprint(
                graph, "SELECT ?a WHERE { %s }" % " . ".join(perm)))
            for perm in itertools.permutations(parts)}
        assert len(fingerprints) == 1
        only = next(iter(fingerprints))
        assert any("strategy=wcoj" in line for line in only)

    def test_plans_and_estimates_invariant_under_hash_seed(self, tmp_path):
        """Same graph, same query, different string-hash seeds: the
        explain output and the raw cost numbers must be bit-identical.
        Run in subprocesses because the seed is fixed at interpreter
        start."""
        script = tmp_path / "probe.py"
        script.write_text(textwrap.dedent("""\
            import sys
            sys.path.insert(0, %r)
            from repro.rdf import Graph, URIRef
            from repro.sparql import parse
            from repro.sparql.optimizer import (GraphStatistics,
                estimate_join, estimate_wcoj, generic_join_order)
            from repro.sparql.plan import optimize_plan

            g = Graph("urn:collab")
            collab = URIRef("urn:collab#with")
            people = [URIRef("urn:p%%03d" %% i) for i in range(120)]
            for i in range(120):
                for j in (1, 2, 3):
                    a, b = people[i], people[(i + j) %% 120]
                    g.add(a, collab, b)
                    g.add(b, collab, a)
            for h in range(16):
                for i in range(120):
                    if i != h:
                        g.add(people[h], collab, people[i])
                        g.add(people[i], collab, people[h])

            queries = [
                "SELECT * WHERE { ?a <urn:collab#with> ?b . "
                "?b <urn:collab#with> ?c . ?a <urn:collab#with> ?c }",
                "SELECT ?a WHERE { ?a <urn:collab#with> ?b . "
                "?b <urn:collab#with> ?c . ?c <urn:collab#with> ?d . "
                "?d <urn:collab#with> ?a . ?a <urn:collab#with> ?c }",
            ]
            for text in queries:
                query = parse(text)
                node = query.pattern
                while not hasattr(node, "triples"):
                    node = node.children()[0]
                stats = GraphStatistics(g)
                cost_nl, rows = estimate_join(node.triples, stats)
                order = generic_join_order(node.triples, stats)
                print("nl=%%.9f rows=%%.9f order=%%s wcoj=%%.9f"
                      %% (cost_nl, rows, order,
                         estimate_wcoj(node.triples, order, stats)))
                plan = optimize_plan(parse(text), graph=g)
                for line in plan.explain().splitlines():
                    if not line.startswith("--"):
                        print(line)
            """ % os.path.join(os.getcwd(), "src")))
        outputs = set()
        for seed in ("0", "1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run([sys.executable, str(script)],
                                  capture_output=True, text=True, env=env)
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1, "plans differ across hash seeds"


class TestValvesOnWcojPlans:
    def test_deadline_fires(self, dataset):
        engine = Engine(dataset)
        query = get_join_query("cycle4_collaborators")
        with pytest.raises(QueryTimeout):
            engine.query(query.sparql, default_graph_uri=DBPEDIA_URI,
                         timeout=0.0)

    def test_row_budget_fires(self, dataset):
        engine = Engine(dataset, max_intermediate_rows=5)
        query = get_join_query("cycle4_collaborators")
        with pytest.raises(RowBudgetExceeded):
            engine.query(query.sparql, default_graph_uri=DBPEDIA_URI)

    def test_cancel_token_fires(self, dataset):
        engine = Engine(dataset)
        token = CancelToken()
        token.cancel("client went away")
        query = get_join_query("triangle_collaborators")
        with pytest.raises(QueryCancelled):
            engine.query(query.sparql, default_graph_uri=DBPEDIA_URI,
                         cancel=token)
