"""Behavioral + property suite for the vectorized columnar data plane.

Four execution planes answer the differential queries here:

* ``vectorized``   — ``Engine(vectorize=True)``: the streaming executor
  with column-at-a-time operators forced on,
* ``streaming``    — ``Engine(vectorize=False)``: the same pipelined
  executor on row-tuple batches,
* ``materialized`` — ``Engine(streaming=False)``: table-at-a-time,
* ``reference``    — ``Engine(columnar=False)``: the seed evaluator.

All four must agree as bags of named bindings.  The vectorized plane
must additionally *prove* its execution shape through the
``vector_batches`` / ``selection_vector_hits`` / ``row_fallbacks``
counters, keep ``TableStream.total_rows`` in lockstep with
``rows_pulled``, and honor the batch-granular safety valves
(``max_rows`` and a re-armed ``deadline`` both trip mid-query).

The ColumnBatch representation itself is covered by property tests:
round-tripping any row batch — nulls, empty schema, single column —
through columnar form and back is the identity, and ``stream_distinct``
carries one ``seen`` set across columnar and row batches alike.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import DBPEDIA_URI, build_dataset
from repro.sparql import Engine, Evaluator
from repro.sparql import algebra as alg
from repro.sparql.evaluator import QueryTimeout, RowBudgetExceeded
from repro.sparql.parser import parse
from repro.sparql.solution import (ColumnBatch, SolutionTable, batched,
                                   stream_distinct)
from repro.sparql.vector import predicate_compilable

PFX = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
"""

COSTAR = PFX + """
SELECT ?a ?b WHERE { ?film dbpp:starring ?a . ?film dbpp:starring ?b }"""

BGP3 = PFX + """
SELECT ?film ?actor ?place WHERE {
    ?film rdf:type dbpo:Film .
    ?film dbpp:starring ?actor .
    ?actor dbpp:birthPlace ?place .
}"""

FILTER_EQ = PFX + """
SELECT ?film ?actor WHERE {
    ?film dbpp:starring ?actor .
    ?film dbpp:country ?country .
    FILTER(?country = <http://dbpedia.org/resource/United_States>)
}"""

DISTINCT_ACTORS = PFX + """
SELECT DISTINCT ?actor WHERE { ?film dbpp:starring ?actor }"""

GROUP_COUNT = PFX + """
SELECT ?actor (COUNT(?film) AS ?n) WHERE {
    ?film dbpp:starring ?actor .
} GROUP BY ?actor"""

DIFFERENTIAL = [COSTAR, BGP3, FILTER_EQ, DISTINCT_ACTORS, GROUP_COUNT]


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale=0.05)


@pytest.fixture(scope="module")
def planes(dataset):
    return {
        "vectorized": Engine(dataset, vectorize=True),
        "streaming": Engine(dataset, vectorize=False),
        "materialized": Engine(dataset, streaming=False, vectorize=False),
        "reference": Engine(dataset, columnar=False),
    }


def named_bag(result):
    return sorted(
        tuple(sorted((v, repr(val)) for v, val in zip(result.variables, row)))
        for row in result.rows)


def drain_vectorized(dataset, query, **kwargs):
    """A forced-vectorized evaluator plus its fully drained stream."""
    plan = Engine(dataset).plan(query)
    evaluator = Evaluator(dataset, optimize=False, multiway=False,
                          vectorize=True, **kwargs)
    stream = evaluator.evaluate_query_stream(plan.query, DBPEDIA_URI)
    rows = []
    for batch in stream.batches:
        rows.extend(batch)
    return evaluator, stream, rows


# ----------------------------------------------------------------------
# ColumnBatch <-> rows round-trips (property tests)
# ----------------------------------------------------------------------

_cells = st.one_of(st.none(), st.integers(min_value=0, max_value=7))


@st.composite
def row_batches(draw):
    width = draw(st.integers(min_value=0, max_value=4))
    n = draw(st.integers(min_value=0, max_value=12))
    return [tuple(draw(_cells) for _ in range(width)) for _ in range(n)], width


@given(row_batches())
@settings(max_examples=200, deadline=None)
def test_roundtrip_is_identity(batch_width):
    rows, width = batch_width
    cb = ColumnBatch.from_rows(rows, width)
    assert len(cb) == len(rows)
    assert cb.width == width
    assert cb.to_rows() == rows
    assert list(cb) == rows  # iteration is the row view
    assert [cb[i] for i in range(len(rows))] == rows  # and so is indexing


@given(row_batches(), st.integers(min_value=-13, max_value=13),
       st.integers(min_value=-13, max_value=13))
@settings(max_examples=200, deadline=None)
def test_slicing_commutes_with_row_view(batch_width, start, stop):
    rows, width = batch_width
    cb = ColumnBatch.from_rows(rows, width)
    assert cb[start:stop].to_rows() == rows[start:stop]


def test_roundtrip_edge_shapes():
    # Empty schema: ColumnBatch still tracks multiplicity without columns.
    unit = SolutionTable.unit()
    cb = ColumnBatch.from_rows(unit.rows, len(unit.variables))
    assert cb.width == 0 and len(cb) == 1
    assert cb.to_rows() == [()]
    # Single column, with and without nulls.
    assert ColumnBatch.from_rows([(3,), (5,)], 1).to_rows() == [(3,), (5,)]
    cb = ColumnBatch.from_rows([(3,), (None,)], 1)
    assert cb.mask(0) == bytearray((0, 1))
    assert cb.to_rows() == [(3,), (None,)]
    # Zero rows.
    assert ColumnBatch.from_rows([], 2).to_rows() == []


@given(st.lists(st.tuples(_cells, _cells), max_size=16),
       st.lists(st.tuples(_cells, _cells), max_size=16),
       st.booleans(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_stream_distinct_shares_seen_across_batch_kinds(
        rows_a, rows_b, a_columnar, b_columnar):
    batch_a = ColumnBatch.from_rows(rows_a, 2) if a_columnar else rows_a
    batch_b = ColumnBatch.from_rows(rows_b, 2) if b_columnar else rows_b
    out = []
    for batch in stream_distinct(iter([batch_a, batch_b])):
        out.extend(batch)
    expected, seen = [], set()
    for row in rows_a + rows_b:
        if row not in seen:
            seen.add(row)
            expected.append(row)
    assert out == expected


@given(st.lists(st.one_of(st.none(),
                          st.integers(min_value=0, max_value=9)),
                max_size=24),
       st.booleans())
@settings(max_examples=150, deadline=None)
def test_stream_distinct_single_column_matches_row_semantics(cells, columnar):
    rows = [(c,) for c in cells]
    batch = ColumnBatch.from_rows(rows, 1) if columnar else rows
    out = []
    for b in stream_distinct(iter([batch])):
        out.extend(b)
    expected, seen = [], set()
    for row in rows:
        if row[0] not in seen:
            seen.add(row[0])
            expected.append(row)
    assert out == expected


def test_stream_distinct_seen_carries_across_calls():
    seen = set()
    first = list(stream_distinct(iter([ColumnBatch.from_rows([(1,), (2,)],
                                                             1)]), seen))
    second = list(stream_distinct(iter([[(2,), (3,)]]), seen))
    assert [r for b in first for r in b] == [(1,), (2,)]
    assert [r for b in second for r in b] == [(3,)]


# ----------------------------------------------------------------------
# Plane differential + execution-shape counters
# ----------------------------------------------------------------------

class TestPlaneIdentity:
    @pytest.mark.parametrize("query", DIFFERENTIAL)
    def test_bag_identical_across_planes(self, planes, query):
        bags = {name: named_bag(engine.query(
            query, default_graph_uri=DBPEDIA_URI))
            for name, engine in planes.items()}
        for name in ("vectorized", "streaming", "materialized"):
            assert bags[name] == bags["reference"], name

    def test_pure_id_plans_never_fall_back(self, dataset):
        for query in (COSTAR, BGP3, FILTER_EQ, DISTINCT_ACTORS):
            evaluator, _, _ = drain_vectorized(dataset, query)
            assert evaluator.stats.row_fallbacks == 0, query
            assert evaluator.stats.vector_batches > 0, query

    def test_compiled_filter_counts_selection_hits(self, dataset):
        evaluator, _, rows = drain_vectorized(dataset, FILTER_EQ)
        assert rows
        assert evaluator.stats.selection_vector_hits > 0
        assert evaluator.stats.row_fallbacks == 0

    def test_total_rows_matches_drained_stream(self, dataset):
        evaluator, stream, rows = drain_vectorized(dataset, COSTAR)
        assert stream.total_rows == len(rows)
        # Every produced row crossed at least this stream's boundary.
        assert evaluator.stats.rows_pulled >= stream.total_rows

    def test_auto_routing_is_equivalent(self, dataset):
        auto = Engine(dataset, vectorize="auto")
        off = Engine(dataset, vectorize=False)
        for query in DIFFERENTIAL:
            assert named_bag(auto.query(query,
                                        default_graph_uri=DBPEDIA_URI)) == \
                named_bag(off.query(query, default_graph_uri=DBPEDIA_URI))


# ----------------------------------------------------------------------
# Batch-granular safety valves under vectorize=True
# ----------------------------------------------------------------------

class TestVectorizedValves:
    def test_max_rows_trips_mid_query(self, dataset):
        plan = Engine(dataset).plan(COSTAR)
        evaluator = Evaluator(dataset, optimize=False, multiway=False,
                              vectorize=True, max_rows=600)
        stream = evaluator.evaluate_query_stream(plan.query, DBPEDIA_URI)
        pulled = 0
        with pytest.raises(RowBudgetExceeded):
            for batch in stream.batches:
                pulled += len(batch)
        # The valve tripped *mid-query*: pattern matching had already
        # produced rows (the batch that broke the budget) when the
        # boundary check fired, and the drain stopped short of the
        # query's 1879 rows.
        assert pulled < 1879
        assert evaluator.stats.pattern_matches > 0

    def test_rearmed_deadline_trips_at_next_batch(self, dataset):
        plan = Engine(dataset).plan(COSTAR)
        evaluator = Evaluator(dataset, optimize=False, multiway=False,
                              vectorize=True)
        stream = evaluator.evaluate_query_stream(plan.query, DBPEDIA_URI)
        batches = stream.batches
        first = next(batches)
        assert len(first) > 0
        # Arm an already-expired deadline between pulls: _check_valves
        # reads self.deadline per batch, so the very next pull must trip.
        evaluator.deadline = time.perf_counter() - 1.0
        with pytest.raises(QueryTimeout):
            next(batches)

    def test_valves_off_by_default(self, dataset):
        evaluator, _, rows = drain_vectorized(dataset, COSTAR)
        assert len(rows) == 1879


# ----------------------------------------------------------------------
# Planner annotation / predicate compilability
# ----------------------------------------------------------------------

class TestVectorizedAnnotation:
    def test_bgp_heavy_plans_are_annotated(self, dataset):
        engine = Engine(dataset)
        for query in (COSTAR, FILTER_EQ, DISTINCT_ACTORS):
            assert engine.plan(query).vectorized, query

    def test_intersect_strategy_is_not_annotated(self, dataset):
        # The optimizer marks BGP3's join as multiway-intersection;
        # intersect steps have no columnar form, so the annotation (and
        # with it 'auto' routing) excludes the plan — forcing
        # vectorize=True past the gate still answers it correctly via
        # the row detour (see TestPlaneIdentity).
        assert not Engine(dataset).plan(BGP3).vectorized

    def test_general_matcher_shapes_are_not_annotated(self, dataset):
        engine = Engine(dataset)
        # A variable in predicate position needs the slot-interpreting
        # matcher, which has no columnar form.
        var_pred = PFX + "SELECT ?p WHERE { ?film ?p ?actor }"
        assert not engine.plan(var_pred).vectorized
        # OrderBy is row-comparison heavy: the columnar plane would
        # transpose everything it produced and win nothing.
        ordered = COSTAR + " ORDER BY ?a"
        assert not engine.plan(ordered).vectorized

    def test_uncompilable_filter_stays_annotated(self, dataset):
        # Non-id filters take the bounded row detour, so the plan as a
        # whole remains columnar-eligible.
        query = PFX + """
        SELECT ?film ?actor WHERE {
            ?film dbpp:starring ?actor .
            FILTER(REGEX(STR(?actor), "a"))
        }"""
        assert Engine(dataset).plan(query).vectorized

    @staticmethod
    def _find_filter(node):
        if isinstance(node, alg.Filter):
            return node
        for child in node.children():
            found = TestVectorizedAnnotation._find_filter(child)
            if found is not None:
                return found
        return None

    @pytest.mark.parametrize("condition,compilable", [
        ("?c = <http://example.org/x>", True),
        ("<http://example.org/x> != ?c", True),
        ("?c IN (<http://example.org/x>, <http://example.org/y>)", True),
        ("BOUND(?c)", True),
        ("!BOUND(?c)", True),
        ("?c = <http://example.org/x> && BOUND(?c)", True),
        ("?c = \"literal\"", False),   # value-equal ids need row view
        ("?c < <http://example.org/x>", False),
        ("STR(?c) = \"x\"", False),
    ])
    def test_predicate_compilable_subset(self, condition, compilable):
        query = parse("SELECT ?s WHERE { ?s ?p ?c . FILTER(%s) }"
                      % condition)
        node = self._find_filter(query.pattern)
        assert node is not None
        assert predicate_compilable(node.condition) is compilable


def test_batched_yields_the_list_itself_when_it_fits():
    rows = [(1,), (2,), (3,)]
    chunks = list(batched(rows, 512))
    assert len(chunks) == 1
    assert chunks[0] is rows  # no defensive copy on the fast path
