"""Unit tests for BGP join-order optimization."""

import pytest

from repro.rdf import Graph, Literal, URIRef, Variable
from repro.sparql import Engine
from repro.sparql.optimizer import GraphStatistics, order_patterns


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def skewed_graph():
    """A graph where 'common' has 1000 triples and 'rare' has 2."""
    g = Graph("http://g")
    for i in range(1000):
        g.add(uri("s%d" % i), uri("common"), uri("o%d" % (i % 10)))
    g.add(uri("s0"), uri("rare"), uri("r0"))
    g.add(uri("s1"), uri("rare"), uri("r1"))
    return g


class TestEstimates:
    def test_concrete_predicate_cardinality(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        common = (Variable("s"), uri("common"), Variable("o"))
        rare = (Variable("s"), uri("rare"), Variable("o"))
        assert stats.estimate(common, set()) == 1000
        assert stats.estimate(rare, set()) == 2

    def test_bound_subject_shrinks_estimate(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        pattern = (Variable("s"), uri("common"), Variable("o"))
        unbound = stats.estimate(pattern, set())
        bound = stats.estimate(pattern, {"s"})
        assert bound < unbound

    def test_missing_predicate_estimates_zero(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        pattern = (Variable("s"), uri("absent"), Variable("o"))
        assert stats.estimate(pattern, set()) == 0

    def test_variable_predicate_is_expensive(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        pattern = (Variable("s"), Variable("p"), Variable("o"))
        assert stats.estimate(pattern, set()) >= 1000


class TestOrdering:
    def test_rare_pattern_first(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        patterns = [
            (Variable("s"), uri("common"), Variable("o")),
            (Variable("s"), uri("rare"), Variable("r")),
        ]
        ordered = order_patterns(patterns, stats)
        assert ordered[0][1] == uri("rare")

    def test_connected_patterns_preferred(self, skewed_graph):
        # A disconnected cheap pattern must not jump ahead of a connected one.
        stats = GraphStatistics(skewed_graph)
        patterns = [
            (Variable("s"), uri("rare"), Variable("r")),
            (Variable("s"), uri("common"), Variable("o")),
            (Variable("x"), uri("rare"), Variable("y")),  # disconnected
        ]
        ordered = order_patterns(patterns, stats)
        assert ordered[1] == patterns[1]

    def test_order_preserves_multiset(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        patterns = [
            (Variable("a"), uri("common"), Variable("b")),
            (Variable("b"), uri("rare"), Variable("c")),
            (Variable("c"), uri("common"), Variable("d")),
        ]
        ordered = order_patterns(patterns, stats)
        assert sorted(map(repr, ordered)) == sorted(map(repr, patterns))


class TestEndToEndEffect:
    def test_optimized_fewer_matches_than_unoptimized(self, skewed_graph):
        query = """PREFIX x: <http://x/>
        SELECT ?s ?o ?r WHERE { ?s x:common ?o . ?s x:rare ?r }"""
        optimized = Engine(skewed_graph, optimize=True)
        baseline = Engine(skewed_graph, optimize=False)
        r1 = optimized.query(query)
        r2 = baseline.query(query)
        assert sorted(map(repr, r1.rows)) == sorted(map(repr, r2.rows))
        assert optimized.last_stats.pattern_matches \
            < baseline.last_stats.pattern_matches

    def test_same_results_regardless_of_optimization(self, skewed_graph):
        query = """PREFIX x: <http://x/>
        SELECT ?s ?o ?r WHERE { ?s x:common ?o . ?s x:rare ?r }"""
        a = Engine(skewed_graph, optimize=True).query(query).to_dataframe()
        b = Engine(skewed_graph, optimize=False).query(query).to_dataframe()
        assert a.equals_bag(b)


# ----------------------------------------------------------------------
# Satellite regressions: estimate memoization, deterministic ties,
# fallback-memo invalidation, run signatures
# ----------------------------------------------------------------------

from repro.rdf import Graph as _Graph  # noqa: E402
from repro.sparql.optimizer import run_signature  # noqa: E402


class _CountingStats(GraphStatistics):
    """GraphStatistics that counts estimate() calls."""

    def __init__(self, graph):
        super().__init__(graph)
        self.calls = 0

    def estimate(self, pattern, bound):
        self.calls += 1
        return super().estimate(pattern, bound)


class TestOrderingSatellites:
    def test_estimates_memoized_within_one_call(self, skewed_graph):
        stats = _CountingStats(skewed_graph)
        patterns = [(Variable("s"), uri("common"), Variable("o%d" % i))
                    for i in range(6)]
        order_patterns(patterns, stats)
        # One estimate per (pattern, fixedness) combination: each pattern
        # is seen unfixed once and subject-fixed once — not O(n^2).
        assert stats.calls <= 2 * len(patterns)

    def test_ties_break_on_canonical_text_not_input_order(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        # Identical estimates: ties break on the pattern's canonical text,
        # so the chosen order is a pure function of the pattern *set* —
        # reversing the input must not change it (self-join BGPs tie on
        # every round, and the wcoj/nested-loop gate compares costs
        # derived from this order).
        patterns = [(Variable("s"), uri("common"), Variable("o1")),
                    (Variable("s"), uri("common"), Variable("o2")),
                    (Variable("s"), uri("common"), Variable("o3"))]
        assert order_patterns(patterns, stats) == patterns
        assert order_patterns(list(reversed(patterns)), stats) == patterns

    def test_pinned_order_on_skewed_graph(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        common = (Variable("s"), uri("common"), Variable("o"))
        rare = (Variable("s"), uri("rare"), Variable("r"))
        bound_obj = (Variable("s"), uri("common"), uri("o0"))
        # rare (2) < bound common (100) < free common (1000) — pinned.
        assert order_patterns([common, rare, bound_obj], stats) \
            == [rare, bound_obj, common]


class _ProfileLessGraph:
    """A graph-like without predicate_profile: the statistics fallback."""

    def __init__(self):
        self._graph = _Graph("urn:fallback-target")

    def add(self, s, p, o):
        self._graph.add(s, p, o)

    def __len__(self):
        return len(self._graph)

    def count(self, *args):
        return self._graph.count(*args)

    def triples(self, s=None, p=None, o=None):
        return self._graph.triples(s, p, o)


class TestFallbackMemoInvalidation:
    def test_mutation_refreshes_fallback_stats(self):
        target = _ProfileLessGraph()
        p = uri("p")
        target.add(uri("s0"), p, uri("o0"))
        stats = GraphStatistics(target)
        pattern = (Variable("s"), p, Variable("o"))
        assert stats.estimate(pattern, set()) == 1
        for i in range(1, 5):
            target.add(uri("s%d" % i), p, uri("o%d" % i))
        # The memo must notice the graph changed underneath it.
        assert stats.estimate(pattern, set()) == 5

    def test_unchanged_graph_reuses_memo(self):
        target = _ProfileLessGraph()
        p = uri("p")
        target.add(uri("s0"), p, uri("o0"))
        stats = GraphStatistics(target)
        pattern = (Variable("s"), p, Variable("o"))
        stats.estimate(pattern, set())
        scans = dict(stats._by_predicate)
        stats.estimate(pattern, set())
        assert stats._by_predicate == scans  # same memo, no rescan


class TestRunSignatures:
    def test_signature_shapes(self):
        p = uri("p")
        s, o, w = Variable("s"), Variable("o"), Variable("w")
        # candidate at subject, object concrete: consumed subjects run
        sig, consumed = run_signature((s, p, uri("k")), "s", set())
        assert sig == ("subjects", p, uri("k")) and consumed
        # candidate at subject, object bound per row
        sig, consumed = run_signature((s, p, o), "s", {"o"})
        assert sig == ("subjects", p, ("?", "o")) and consumed
        # candidate at subject, object free: presence run, not consumed
        sig, consumed = run_signature((s, p, o), "s", set())
        assert sig == ("psubjects", p) and not consumed
        # candidate at object with bound subject
        sig, consumed = run_signature((s, p, o), "o", {"s"})
        assert sig == ("objects", p, ("?", "s")) and consumed
        # candidate at object with free subject: no run exists
        assert run_signature((s, p, o), "o", set()) == (None, False)
        # variable predicate or repeated candidate: no contribution
        assert run_signature((s, Variable("p"), o), "s", set()) \
            == (None, False)
        assert run_signature((s, p, s), "s", set()) == (None, False)
