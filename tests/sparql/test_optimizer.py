"""Unit tests for BGP join-order optimization."""

import pytest

from repro.rdf import Graph, Literal, URIRef, Variable
from repro.sparql import Engine
from repro.sparql.optimizer import GraphStatistics, order_patterns


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def skewed_graph():
    """A graph where 'common' has 1000 triples and 'rare' has 2."""
    g = Graph("http://g")
    for i in range(1000):
        g.add(uri("s%d" % i), uri("common"), uri("o%d" % (i % 10)))
    g.add(uri("s0"), uri("rare"), uri("r0"))
    g.add(uri("s1"), uri("rare"), uri("r1"))
    return g


class TestEstimates:
    def test_concrete_predicate_cardinality(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        common = (Variable("s"), uri("common"), Variable("o"))
        rare = (Variable("s"), uri("rare"), Variable("o"))
        assert stats.estimate(common, set()) == 1000
        assert stats.estimate(rare, set()) == 2

    def test_bound_subject_shrinks_estimate(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        pattern = (Variable("s"), uri("common"), Variable("o"))
        unbound = stats.estimate(pattern, set())
        bound = stats.estimate(pattern, {"s"})
        assert bound < unbound

    def test_missing_predicate_estimates_zero(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        pattern = (Variable("s"), uri("absent"), Variable("o"))
        assert stats.estimate(pattern, set()) == 0

    def test_variable_predicate_is_expensive(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        pattern = (Variable("s"), Variable("p"), Variable("o"))
        assert stats.estimate(pattern, set()) >= 1000


class TestOrdering:
    def test_rare_pattern_first(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        patterns = [
            (Variable("s"), uri("common"), Variable("o")),
            (Variable("s"), uri("rare"), Variable("r")),
        ]
        ordered = order_patterns(patterns, stats)
        assert ordered[0][1] == uri("rare")

    def test_connected_patterns_preferred(self, skewed_graph):
        # A disconnected cheap pattern must not jump ahead of a connected one.
        stats = GraphStatistics(skewed_graph)
        patterns = [
            (Variable("s"), uri("rare"), Variable("r")),
            (Variable("s"), uri("common"), Variable("o")),
            (Variable("x"), uri("rare"), Variable("y")),  # disconnected
        ]
        ordered = order_patterns(patterns, stats)
        assert ordered[1] == patterns[1]

    def test_order_preserves_multiset(self, skewed_graph):
        stats = GraphStatistics(skewed_graph)
        patterns = [
            (Variable("a"), uri("common"), Variable("b")),
            (Variable("b"), uri("rare"), Variable("c")),
            (Variable("c"), uri("common"), Variable("d")),
        ]
        ordered = order_patterns(patterns, stats)
        assert sorted(map(repr, ordered)) == sorted(map(repr, patterns))


class TestEndToEndEffect:
    def test_optimized_fewer_matches_than_unoptimized(self, skewed_graph):
        query = """PREFIX x: <http://x/>
        SELECT ?s ?o ?r WHERE { ?s x:common ?o . ?s x:rare ?r }"""
        optimized = Engine(skewed_graph, optimize=True)
        baseline = Engine(skewed_graph, optimize=False)
        r1 = optimized.query(query)
        r2 = baseline.query(query)
        assert sorted(map(repr, r1.rows)) == sorted(map(repr, r2.rows))
        assert optimized.last_stats.pattern_matches \
            < baseline.last_stats.pattern_matches

    def test_same_results_regardless_of_optimization(self, skewed_graph):
        query = """PREFIX x: <http://x/>
        SELECT ?s ?o ?r WHERE { ?s x:common ?o . ?s x:rare ?r }"""
        a = Engine(skewed_graph, optimize=True).query(query).to_dataframe()
        b = Engine(skewed_graph, optimize=False).query(query).to_dataframe()
        assert a.equals_bag(b)
