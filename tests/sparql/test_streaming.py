"""Differential + behavioral suite for the pipelined streaming executor.

Three execution planes answer every query here:

* ``streaming``    — ``Engine(streaming=True)``: the batch-iterator
  executor forced for every plan,
* ``materialized`` — ``Engine(streaming=False)``: the classic
  table-at-a-time columnar evaluator,
* ``reference``    — ``Engine(columnar=False)``: the seed dict-based
  evaluator.

They must agree on every workload case study and on the LIMIT/OFFSET
edges; the streaming plane must additionally *prove* its short-circuiting
through the ``rows_pulled`` / ``early_exits`` / ``peak_batch_rows``
counters.
"""

import pytest

from repro.client import EngineClient
from repro.data import DBPEDIA_URI, build_dataset
from repro.rdf import Graph, Literal, URIRef
from repro.sparql import Engine, ResultSet
from repro.sparql.evaluator import STREAM_BATCH_ROWS
from repro.sparql.solution import batched, stream_distinct
from repro.workload import CASE_STUDIES, get_case_study

PFX = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
"""

COSTAR = PFX + """
SELECT ?a ?b WHERE { ?film dbpp:starring ?a . ?film dbpp:starring ?b }"""

BGP3 = PFX + """
SELECT ?film ?actor ?place WHERE {
    ?film rdf:type dbpo:Film .
    ?film dbpp:starring ?actor .
    ?actor dbpp:birthPlace ?place .
}"""


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale=0.05)


@pytest.fixture(scope="module")
def engines(dataset):
    return {
        "streaming": Engine(dataset, streaming=True),
        "materialized": Engine(dataset, streaming=False),
        "reference": Engine(dataset, columnar=False),
    }


@pytest.fixture(params=[cs.key for cs in CASE_STUDIES])
def case_study(request):
    return get_case_study(request.param)


def row_bag(result):
    """Order-insensitive fingerprint: rows as bags, columns keyed by
    variable name (SELECT * column *order* is plane-specific)."""
    order = sorted(range(len(result.variables)),
                   key=lambda i: result.variables[i])
    return sorted(tuple(repr(row[i]) for i in order) for row in result.rows)


def run_frame(engines, frame):
    """Execute one RDFFrame on all three planes -> {plane: ResultSet}."""
    out = {}
    for plane, engine in engines.items():
        if engine.columnar:
            out[plane] = engine.query_model(frame.query_model())
        else:
            out[plane] = engine.query(frame.to_sparql())
    return out


class TestCaseStudyPlanes:
    def test_full_results_identical(self, engines, case_study):
        results = run_frame(engines, case_study.frame())
        want = row_bag(results["reference"])
        assert row_bag(results["materialized"]) == want
        assert row_bag(results["streaming"]) == want

    def test_limited_results_agree(self, engines, case_study):
        frame = case_study.frame().head(7, 3)
        full_bag = row_bag(run_frame(engines, case_study.frame())["reference"])
        results = run_frame(engines, frame)
        total = len(full_bag)
        expect = max(0, min(7, total - 3))
        for plane, result in results.items():
            assert len(result) == expect, plane
            # A LIMIT window must be a sub-bag of the full result.
            for key in row_bag(result):
                assert key in full_bag, plane

    def test_limit_zero_is_empty_everywhere(self, engines, case_study):
        frame = case_study.frame().head(0)
        for plane, result in run_frame(engines, frame).items():
            assert len(result) == 0, plane

    def test_offset_only_agrees(self, engines, case_study):
        frame = case_study.frame().head(None, 5)
        full = len(run_frame(engines, case_study.frame())["reference"])
        for plane, result in run_frame(engines, frame).items():
            assert len(result) == max(0, full - 5), plane


class TestLimitEdgesOnText:
    """LIMIT/OFFSET edge cases on deterministic BGP-spine queries, where
    all three planes produce rows in the same order and results can be
    compared exactly."""

    @pytest.mark.parametrize("suffix", [
        " LIMIT 10", " LIMIT 0", " OFFSET 7", " LIMIT 5 OFFSET 3",
        " ORDER BY ?a LIMIT 6", " ORDER BY ?a DESC(?b) LIMIT 4 OFFSET 2",
        " ORDER BY ?b OFFSET 5",
    ])
    def test_costar_windows_identical(self, engines, suffix):
        query = COSTAR + suffix
        # The two columnar planes share one deterministic row order, so
        # the window contents must match exactly.
        streamed = engines["streaming"].query(
            query, default_graph_uri=DBPEDIA_URI).rows
        materialized = engines["materialized"].query(
            query, default_graph_uri=DBPEDIA_URI).rows
        assert streamed == materialized
        # The reference plane may produce rows in a different base order
        # (a LIMIT window is then a different-but-valid answer): hold it
        # to the window size and to drawing from the same result bag.
        reference = engines["reference"].query(
            query, default_graph_uri=DBPEDIA_URI).rows
        assert len(reference) == len(streamed)
        full_bag = row_bag(engines["reference"].query(
            COSTAR, default_graph_uri=DBPEDIA_URI))
        for row in streamed + reference:
            assert tuple(map(repr, row)) in full_bag

    def test_offset_past_end(self, engines):
        query = COSTAR + " OFFSET 1000000"
        for plane, engine in engines.items():
            assert len(engine.query(query,
                                    default_graph_uri=DBPEDIA_URI)) == 0


class TestOrderByComposite:
    """The repeated-full-sort fix: one composite key, per-key direction,
    stability preserved — pinned against the reference evaluator, which
    still sorts the seed way (one stable pass per key, reversed)."""

    QUERY = """
    SELECT ?x ?y ?z WHERE {
        VALUES (?x ?y ?z) {
            (2 "b" 1) (1 "b" 2) (2 "a" 3) (1 "a" 4)
            (2 "b" 5) (1 "b" 6) (UNDEF "c" 7) (2 UNDEF 8)
        }
    } ORDER BY ?x DESC(?y) ?z
    """

    def test_three_key_mixed_directions(self):
        graph = Graph("http://t")
        engines = {
            "streaming": Engine(graph, streaming=True),
            "materialized": Engine(graph, streaming=False),
            "reference": Engine(graph, columnar=False),
        }
        want = None
        for plane, engine in engines.items():
            got = engine.query(self.QUERY).rows
            if want is None:
                want = got
            else:
                assert got == want, plane
        # And the order itself is right: ?x asc (unbound first), then ?y
        # desc, then ?z asc.
        values = [tuple(None if t is None else t.value for t in row)
                  for row in want]
        assert values == [
            (None, "c", 7),
            (1, "b", 2), (1, "b", 6), (1, "a", 4),
            (2, "b", 1), (2, "b", 5), (2, "a", 3), (2, None, 8),
        ]

    def test_stability_with_tied_keys(self):
        graph = Graph("http://t")
        query = """
        SELECT ?x ?tag WHERE {
            VALUES (?x ?tag) { (1 "first") (1 "second") (1 "third") }
        } ORDER BY ?x
        """
        for engine in (Engine(graph, streaming=True),
                       Engine(graph, streaming=False),
                       Engine(graph, columnar=False)):
            tags = [row[1].value for row in engine.query(query).rows]
            assert tags == ["first", "second", "third"]


class TestTopK:
    def test_plan_fuses_slice_orderby_through_project(self, engines):
        from repro.sparql import algebra as alg

        engine = engines["streaming"]
        plan = engine.plan(COSTAR + " ORDER BY ?a LIMIT 10",
                           default_graph_uri=DBPEDIA_URI)
        assert plan.streaming
        assert isinstance(plan.query.pattern, alg.Project)
        topk = plan.query.pattern.pattern
        assert isinstance(topk, alg.TopK)
        assert isinstance(topk.pattern, alg.BGP)
        assert topk.limit == 10

    def test_offset_only_plan_is_not_streaming(self, engines):
        plan = engines["streaming"].plan(COSTAR + " OFFSET 5",
                                         default_graph_uri=DBPEDIA_URI)
        assert not plan.streaming

    def test_limit_pushdown_disabled_keeps_slice(self, dataset):
        from repro.sparql import algebra as alg

        engine = Engine(dataset, limit_pushdown=False)
        plan = engine.plan(COSTAR + " ORDER BY ?a LIMIT 10",
                           default_graph_uri=DBPEDIA_URI)
        assert not plan.streaming
        assert isinstance(plan.query.pattern, alg.Slice)

    def test_slice_fusion_arithmetic(self):
        from repro.sparql import algebra as alg
        from repro.sparql.plan import limit_pushdown

        inner = alg.Slice(alg.BGP([]), limit=10, offset=3)
        node, changes = limit_pushdown(alg.Slice(inner, limit=5, offset=2))
        assert changes == 1
        assert isinstance(node, alg.Slice)
        assert (node.limit, node.offset) == (5, 5)
        # Outer window larger than what the inner slice leaves.
        node, _ = limit_pushdown(
            alg.Slice(alg.Slice(alg.BGP([]), limit=4, offset=0),
                      limit=10, offset=3))
        assert (node.limit, node.offset) == (1, 3)

    def test_topk_not_pushed_past_projected_away_key(self, engines):
        # ORDER BY on a variable the SELECT clause drops: this engine's
        # algebra sorts *above* the projection, so the key is a no-op —
        # and LimitPushdown must not swap TopK below the Project (where
        # the key would suddenly bind and change the result).
        from repro.sparql import algebra as alg

        query = COSTAR.replace("?a ?b", "?a") + " ORDER BY ?b LIMIT 5"
        engine = engines["streaming"]
        plan = engine.plan(query, default_graph_uri=DBPEDIA_URI)
        topk = plan.query.pattern
        assert isinstance(topk, alg.TopK)          # stayed above Project
        assert isinstance(topk.pattern, alg.Project)
        streamed = engines["streaming"].query(
            query, default_graph_uri=DBPEDIA_URI).rows
        materialized = engines["materialized"].query(
            query, default_graph_uri=DBPEDIA_URI).rows
        assert streamed == materialized
        assert len(engines["reference"].query(
            query, default_graph_uri=DBPEDIA_URI)) == len(streamed)

    def test_threshold_pruning_skips_fanout(self, dataset):
        query = COSTAR + " ORDER BY ?a LIMIT 10"
        streaming = Engine(dataset, streaming=True)
        baseline = Engine(dataset, streaming=False, limit_pushdown=False)
        got = streaming.query(query, default_graph_uri=DBPEDIA_URI)
        want = baseline.query(query, default_graph_uri=DBPEDIA_URI)
        assert got.rows == want.rows
        # The bounded sort pruned join fan-out: far fewer index matches.
        assert streaming.last_stats.pattern_matches \
            < baseline.last_stats.pattern_matches / 2
        assert streaming.last_stats.early_exits >= 1


class TestEarlyExit:
    def test_limit_pulls_small_multiple_of_limit(self, dataset):
        engine = Engine(dataset)
        full = engine.query(COSTAR, default_graph_uri=DBPEDIA_URI)
        assert len(full) > 1000  # the intermediate result is genuinely big

        result = engine.query(COSTAR + " LIMIT 10",
                              default_graph_uri=DBPEDIA_URI)
        stats = engine.last_stats
        assert len(result) == 10
        assert result.rows == full.rows[:10]
        # The acceptance bar: a LIMIT 10 query pulls a small multiple of
        # 10 rows through the pipeline, not the full cardinality.
        assert stats.rows_pulled <= 100
        assert stats.rows_pulled < len(full)
        assert stats.early_exits >= 1
        assert 0 < stats.peak_batch_rows <= STREAM_BATCH_ROWS

    def test_limit_zero_pulls_nothing(self, dataset):
        engine = Engine(dataset)
        result = engine.query(COSTAR + " LIMIT 0",
                              default_graph_uri=DBPEDIA_URI)
        assert len(result) == 0
        assert list(result.variables) == ["a", "b"]
        assert engine.last_stats.rows_pulled == 0
        assert engine.last_stats.early_exits >= 1

    def test_distinct_limit_stops_after_k_distinct(self, dataset):
        engine = Engine(dataset)
        distinct_q = COSTAR.replace("SELECT ?a", "SELECT DISTINCT ?a") \
                           .replace(" ?b WHERE", " WHERE")
        full = engine.query(distinct_q, default_graph_uri=DBPEDIA_URI)
        # What the dedup would consume without the bound: the whole BGP.
        dedup_input = len(engine.query(COSTAR,
                                       default_graph_uri=DBPEDIA_URI))

        limited = engine.query(distinct_q + " LIMIT 3",
                               default_graph_uri=DBPEDIA_URI)
        stats = engine.last_stats
        assert limited.rows == full.rows[:3]
        assert len(set(limited.rows)) == 3
        assert stats.early_exits >= 1
        # Dedup + slice stream: production stops once 3 distinct rows
        # exist, instead of deduplicating the whole input.
        assert stats.rows_pulled < dedup_input / 2

    def test_materialized_plane_untouched_by_counters(self, dataset):
        engine = Engine(dataset, streaming=False)
        engine.query(COSTAR + " LIMIT 10", default_graph_uri=DBPEDIA_URI)
        assert engine.last_stats.rows_pulled == 0
        assert engine.last_stats.early_exits == 0


class TestBatchedHelper:
    def test_fitting_list_is_yielded_as_is(self):
        # Re-chunking must not copy a table that already fits in one
        # batch: the chunk is the row list *itself*, not a slice of it.
        rows = [(i,) for i in range(10)]
        chunks = list(batched(rows, STREAM_BATCH_ROWS))
        assert len(chunks) == 1 and chunks[0] is rows

    def test_oversized_list_is_rechunked_into_slices(self):
        rows = [(i,) for i in range(STREAM_BATCH_ROWS + 5)]
        chunks = list(batched(rows, STREAM_BATCH_ROWS))
        assert [len(c) for c in chunks] == [STREAM_BATCH_ROWS, 5]
        assert [r for c in chunks for r in c] == rows

    def test_empty_list_yields_nothing(self):
        assert list(batched([], STREAM_BATCH_ROWS)) == []


class TestStreamDistinctHelper:
    def test_dedup_preserves_first_seen_order(self):
        batches = iter([[(1,), (2,), (1,)], [(3,), (2,)], [(1,)], [(4,)]])
        out = [row for batch in stream_distinct(batches) for row in batch]
        assert out == [(1,), (2,), (3,), (4,)]

    def test_shared_seen_carries_across_streams(self):
        seen = set()
        first = [r for b in stream_distinct(iter([[(1,), (2,)]]), seen)
                 for r in b]
        second = [r for b in stream_distinct(iter([[(2,), (3,)]]), seen)
                  for r in b]
        assert first == [(1,), (2,)]
        assert second == [(3,)]

    def test_resultset_distinct_uses_same_semantics(self):
        result = ResultSet(["v"], [(Literal(1),), (Literal(2),),
                                   (Literal(1),)])
        assert [row[0].value for row in result.distinct().rows] == [1, 2]


class TestCursorPagination:
    def test_engine_stream_page_is_incremental(self, dataset):
        engine = Engine(dataset)
        full = engine.query(COSTAR, default_graph_uri=DBPEDIA_URI)
        cursor = engine.stream(COSTAR, default_graph_uri=DBPEDIA_URI)
        page = cursor.page(0, 20)
        stats = engine.last_stats
        assert page.rows == full.rows[:20]
        # O(offset + n): ~20 rows crossed each operator boundary, not the
        # thousands in the full result.
        assert stats.rows_pulled <= 200
        assert stats.rows_pulled < len(full)
        # Draining the cursor completes the exact same result.
        assert cursor.result().rows == full.rows

    def test_engine_stream_reference_plane_falls_back(self, dataset):
        engine = Engine(dataset, columnar=False)
        cursor = engine.stream(COSTAR, default_graph_uri=DBPEDIA_URI)
        want = engine.query(COSTAR, default_graph_uri=DBPEDIA_URI)
        assert cursor.page(3, 5).rows == want.rows[3:8]

    def test_rdfframe_execute_page_rides_streaming_plan(self, dataset):
        kg_frame = get_case_study("movie_genre").frame()
        engine = Engine(dataset)
        client = EngineClient(engine)
        df_full = kg_frame.execute(client)
        df_page = kg_frame.execute(client, limit=5, offset=2)
        assert engine.last_plan.streaming
        assert len(df_page) == max(0, min(5, len(df_full) - 2))
