"""Unit tests for the SPARQL parser -> algebra translation."""

import pytest

from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, URIRef, Variable
from repro.sparql import algebra as alg
from repro.sparql.parser import ParseError, parse


def unwrap(node, *types):
    """Descend through the given wrapper types."""
    while isinstance(node, types):
        node = node.pattern
    return node


class TestBasicQueries:
    def test_single_triple(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o . }")
        project = q.pattern
        assert isinstance(project, alg.Project)
        assert project.variables == ["s"]
        bgp = project.pattern
        assert isinstance(bgp, alg.BGP)
        assert bgp.triples == [(Variable("s"), Variable("p"), Variable("o"))]

    def test_select_star(self):
        q = parse("SELECT * WHERE { ?s ?p ?o }")
        assert q.pattern.variables is None

    def test_from_clause(self):
        q = parse("SELECT * FROM <http://g1> FROM <http://g2> "
                  "WHERE { ?s ?p ?o }")
        assert q.from_graphs == ["http://g1", "http://g2"]

    def test_prefix_resolution(self):
        q = parse("PREFIX ex: <http://e/>\n"
                  "SELECT * WHERE { ?s ex:p ex:o }")
        bgp = q.pattern.pattern
        assert bgp.triples[0][1] == URIRef("http://e/p")

    def test_default_prefixes_available(self):
        q = parse("SELECT * WHERE { ?m dbpp:starring ?a }")
        bgp = q.pattern.pattern
        assert str(bgp.triples[0][1]) == "http://dbpedia.org/property/starring"

    def test_a_keyword(self):
        q = parse("SELECT * WHERE { ?s a ?cls }")
        assert q.pattern.pattern.triples[0][1] == RDF.type

    def test_semicolon_shorthand(self):
        q = parse("SELECT * WHERE { ?s ?p ?o ; ?q ?r . }")
        triples = q.pattern.pattern.triples
        assert len(triples) == 2
        assert triples[0][0] == triples[1][0]

    def test_comma_shorthand(self):
        q = parse("SELECT * WHERE { ?s ?p ?a , ?b . }")
        triples = q.pattern.pattern.triples
        assert len(triples) == 2
        assert triples[0][1] == triples[1][1]

    def test_adjacent_bgps_merge(self):
        q = parse("SELECT * WHERE { ?a ?p ?b . ?b ?q ?c . ?c ?r ?d . }")
        assert isinstance(q.pattern.pattern, alg.BGP)
        assert len(q.pattern.pattern.triples) == 3

    def test_literals_in_triples(self):
        q = parse('SELECT * WHERE { ?s ?p "text" . ?s ?q 42 . ?s ?r 1.5 . '
                  "?s ?t true }")
        objects = [t[2] for t in q.pattern.pattern.triples]
        assert objects[0] == Literal("text")
        assert objects[1].value == 42
        assert objects[2].value == 1.5
        assert objects[3].value is True

    def test_typed_literal_in_triple(self):
        q = parse('SELECT * WHERE { ?s ?p "2010-01-01"^^xsd:date }')
        obj = q.pattern.pattern.triples[0][2]
        assert obj.datatype.endswith("date")


class TestPatterns:
    def test_optional(self):
        q = parse("SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s ?q ?r } }")
        assert isinstance(q.pattern.pattern, alg.LeftJoin)

    def test_triples_after_optional_join(self):
        q = parse("SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s ?q ?r } ?s ?t ?u }")
        node = q.pattern.pattern
        assert isinstance(node, alg.Join)
        assert isinstance(node.left, alg.LeftJoin)

    def test_union(self):
        q = parse("SELECT * WHERE { { ?s ?p ?o } UNION { ?s ?q ?r } }")
        assert isinstance(q.pattern.pattern, alg.Union)

    def test_filter_wraps_group(self):
        q = parse("SELECT * WHERE { ?s ?p ?o FILTER ( ?o > 5 ) }")
        assert isinstance(q.pattern.pattern, alg.Filter)

    def test_filter_bare_function_call(self):
        q = parse("SELECT * WHERE { ?s ?p ?o FILTER isIRI(?o) }")
        assert isinstance(q.pattern.pattern, alg.Filter)

    def test_filter_regex(self):
        q = parse('SELECT * WHERE { ?s ?p ?o '
                  'FILTER regex(str(?o), "USA") }')
        assert isinstance(q.pattern.pattern, alg.Filter)

    def test_nested_subquery(self):
        q = parse("""SELECT * WHERE {
            ?s ?p ?o
            { SELECT ?s WHERE { ?s ?q ?r } }
        }""")
        node = q.pattern.pattern
        assert isinstance(node, alg.Join)
        assert isinstance(node.right, alg.Project)

    def test_graph_clause(self):
        q = parse("SELECT * WHERE { GRAPH <http://g> { ?s ?p ?o } }")
        node = q.pattern.pattern
        assert isinstance(node, alg.GraphPattern)
        assert node.graph_uri == "http://g"

    def test_bind(self):
        q = parse("SELECT * WHERE { ?s ?p ?o BIND( ?o + 1 AS ?inc ) }")
        assert isinstance(q.pattern.pattern, alg.Extend)

    def test_minus(self):
        q = parse("SELECT * WHERE { ?s ?p ?o MINUS { ?s ?q ?r } }")
        assert isinstance(q.pattern.pattern, alg.Minus)

    def test_values_single_var(self):
        q = parse("SELECT * WHERE { ?s ?p ?o VALUES ?s { <http://x/a> } }")
        node = q.pattern.pattern
        assert isinstance(node, alg.Join)
        assert isinstance(node.right, alg.InlineData)

    def test_filter_exists_node(self):
        q = parse("SELECT * WHERE { ?s ?p ?o "
                  "FILTER EXISTS { ?s ?q ?r } }")
        assert isinstance(q.pattern.pattern, alg.FilterExists)
        assert not q.pattern.pattern.negated

    def test_filter_not_exists_node(self):
        q = parse("SELECT * WHERE { ?s ?p ?o "
                  "FILTER NOT EXISTS { ?s ?q ?r } }")
        assert q.pattern.pattern.negated


class TestAggregation:
    QUERY = """
    SELECT ?a (COUNT(DISTINCT ?m) AS ?n)
    WHERE { ?m ?p ?a }
    GROUP BY ?a
    HAVING ( COUNT(DISTINCT ?m) >= 5 )
    """

    def test_group_node(self):
        q = parse(self.QUERY)
        group = unwrap(q.pattern, alg.Project)
        assert isinstance(group, alg.Group)
        assert group.group_vars == ["a"]

    def test_select_aggregate_alias(self):
        q = parse(self.QUERY)
        group = unwrap(q.pattern, alg.Project)
        assert any(agg.alias == "n" for agg in group.aggregates)

    def test_having_synthesizes_aggregate(self):
        q = parse(self.QUERY)
        group = unwrap(q.pattern, alg.Project)
        assert group.having is not None
        assert len(group.aggregates) == 2  # ?n plus the HAVING copy

    def test_count_star(self):
        q = parse("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        group = unwrap(q.pattern, alg.Project)
        assert group.aggregates[0].expression is None

    def test_implicit_group(self):
        q = parse("SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }")
        group = unwrap(q.pattern, alg.Project)
        assert isinstance(group, alg.Group)
        assert group.group_vars == []

    def test_having_without_group_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT ?s WHERE { ?s ?p ?o } HAVING ( ?s > 1 )")

    def test_group_by_requires_variable(self):
        with pytest.raises(ParseError):
            parse("SELECT ?s WHERE { ?s ?p ?o } GROUP BY")


class TestModifiers:
    def test_distinct(self):
        q = parse("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
        assert isinstance(q.pattern, alg.Distinct)

    def test_order_by(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?o")
        assert isinstance(q.pattern, alg.OrderBy)
        assert q.pattern.keys == [("s", "desc"), ("o", "asc")]

    def test_limit_offset(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o } LIMIT 10 OFFSET 5")
        assert isinstance(q.pattern, alg.Slice)
        assert q.pattern.limit == 10
        assert q.pattern.offset == 5

    def test_expression_select_item(self):
        q = parse("SELECT (?a + 1 AS ?b) WHERE { ?s ?p ?a }")
        node = unwrap(q.pattern, alg.Project)
        assert isinstance(node, alg.Extend)
        assert node.var == "b"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT WHERE { ?s ?p ?o }",            # empty select
        "SELECT ?s { ?s ?p }",                  # incomplete triple
        "SELECT ?s WHERE { ?s ?p ?o ",          # unterminated group
        "SELECT ?s WHERE { ?s nope:p ?o }",     # unknown prefix
        "ASK { ?s ?p ?o }",                     # unsupported form
        "SELECT ?s WHERE { ?s ?p ?o } extra",   # trailing garbage
    ])
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestHelpers:
    def test_count_nested_selects(self):
        from repro.sparql import count_nested_selects
        q = parse("""SELECT * WHERE {
            { SELECT * WHERE { ?a ?b ?c { SELECT ?d WHERE { ?d ?e ?f } } } }
            { SELECT ?g WHERE { ?g ?h ?i } }
        }""")
        assert count_nested_selects(q.pattern) == 3

    def test_in_scope_variables(self):
        q = parse("SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s ?q ?r } }")
        assert set(q.pattern.in_scope()) == {"s", "p", "o", "q", "r"}
