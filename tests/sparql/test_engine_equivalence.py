"""Engine-level differential corpus: the columnar engine must return the
same decoded result bag as the seed dict-based reference engine for every
SPARQL feature the tier-1 suite exercises."""

import pytest

from repro.rdf import Dataset, Graph, Literal, TermDictionary, URIRef
from repro.sparql import Engine

PFX = "PREFIX x: <http://x/>\n"


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture(scope="module")
def dataset():
    d = TermDictionary()
    ds = Dataset()
    g = Graph("http://g", dictionary=d)
    for i in range(12):
        g.add(uri("m%d" % i), uri("type"), uri("Film"))
        g.add(uri("m%d" % i), uri("starring"), uri("a%d" % (i % 5)))
        g.add(uri("m%d" % i), uri("year"), Literal(1990 + i))
    for i in range(5):
        if i != 3:  # a3 has no birthplace: exercises OPTIONAL/unbound
            g.add(uri("a%d" % i), uri("born"), uri("c%d" % (i % 2)))
        g.add(uri("a%d" % i), uri("label"), Literal("Actor %d" % i))
    ds.add_graph(g)
    g2 = Graph("http://g2", dictionary=d)
    for i in range(5):
        g2.add(uri("a%d" % i), uri("award"), Literal(i))
    ds.add_graph(g2)
    return ds


CORPUS = [
    # BGP / joins
    "SELECT ?m ?a WHERE { ?m x:starring ?a }",
    "SELECT ?m ?c WHERE { ?m x:starring ?a . ?a x:born ?c }",
    "SELECT ?a WHERE { x:m1 x:starring ?a }",
    "SELECT ?p ?o WHERE { x:a1 ?p ?o }",
    "SELECT ?m WHERE { ?m x:nope ?a }",
    # OPTIONAL (plain and nested), unbound shared vars
    "SELECT ?a ?c WHERE { ?m x:starring ?a OPTIONAL { ?a x:born ?c } }",
    """SELECT * WHERE { ?m x:starring ?a
        OPTIONAL { ?a x:born ?c OPTIONAL { ?a x:label ?l } } }""",
    # OPTIONAL with FILTER inside
    """SELECT ?m ?y WHERE { ?m x:starring ?a
        OPTIONAL { ?m x:year ?y FILTER(?y > 1995) } }""",
    # UNION
    """SELECT ?m WHERE { { ?m x:starring x:a1 } UNION { ?m x:year 1999 } }""",
    """SELECT ?a ?c ?l WHERE {
        { ?a x:born ?c } UNION { ?a x:label ?l } }""",
    # FILTER variants
    "SELECT ?m WHERE { ?m x:year ?y FILTER(?y >= 1995 && ?y < 2000) }",
    """SELECT ?a WHERE { ?m x:starring ?a OPTIONAL { ?a x:born ?c }
        FILTER(!bound(?c)) }""",
    "SELECT ?a WHERE { ?a x:label ?l FILTER regex(?l, \"Actor [12]\") }",
    # BIND
    "SELECT ?m ?n WHERE { ?m x:year ?y BIND(?y + 10 AS ?n) }",
    # BIND whose expression errors: fresh var stays unbound ...
    "SELECT ?m ?n WHERE { ?m x:year ?y BIND(str(?missing) AS ?n) }",
    # ... and an already-bound var keeps its existing binding.
    "SELECT ?m ?y WHERE { ?m x:year ?y BIND(str(?missing) AS ?y) }",
    # Aggregation: group, having, count(*), distinct, implicit group
    "SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a } GROUP BY ?a",
    """SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
        GROUP BY ?a HAVING (COUNT(?m) >= 3)""",
    "SELECT (COUNT(*) AS ?n) WHERE { ?m x:starring ?a }",
    "SELECT (COUNT(DISTINCT ?a) AS ?n) WHERE { ?m x:starring ?a }",
    """SELECT (SUM(?y) AS ?s) (MIN(?y) AS ?lo) (MAX(?y) AS ?hi)
        (AVG(?y) AS ?mean) WHERE { ?m x:year ?y }""",
    "SELECT (COUNT(?m) AS ?n) WHERE { ?m x:nope ?a }",
    # Modifiers
    "SELECT DISTINCT ?a WHERE { ?m x:starring ?a }",
    "SELECT ?m ?y WHERE { ?m x:year ?y } ORDER BY DESC(?y) LIMIT 4 OFFSET 2",
    "SELECT * WHERE { ?m x:year ?y } ORDER BY ?y",
    # Subqueries (materialized independently)
    """SELECT ?m ?n WHERE { ?m x:starring ?a
        { SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
          GROUP BY ?a } }""",
    """SELECT ?m ?a WHERE { ?m x:year 1999
        { SELECT ?a WHERE { ?m x:starring ?a } } }""",
    # VALUES
    """SELECT ?m ?a WHERE { ?m x:starring ?a
        VALUES ?a { x:a1 x:a2 } }""",
    # MINUS / EXISTS
    """SELECT ?a WHERE { ?m x:starring ?a MINUS { ?a x:born x:c0 } }""",
    """SELECT ?a WHERE { ?m x:starring ?a
        FILTER EXISTS { ?a x:born ?c } }""",
    """SELECT ?a WHERE { ?m x:starring ?a
        FILTER NOT EXISTS { ?a x:born ?c } }""",
]

MULTI_GRAPH_CORPUS = [
    """SELECT ?a ?w FROM <http://g> FROM <http://g2>
        WHERE { ?a x:label ?l . ?a x:award ?w }""",
    """SELECT ?a FROM <http://g> FROM <http://g2> WHERE {
        GRAPH <http://g> { ?a x:label ?l }
        GRAPH <http://g2> { ?a x:award ?w } }""",
]


def result_bag(engine, query, **kwargs):
    result = engine.query(PFX + query, **kwargs)
    return sorted(tuple(map(repr, row)) for row in result.rows), \
        list(result.variables)


@pytest.mark.parametrize("query", CORPUS, ids=range(len(CORPUS)))
def test_columnar_matches_reference(dataset, query):
    got = result_bag(Engine(dataset, columnar=True), query,
                     default_graph_uri="http://g")
    want = result_bag(Engine(dataset, columnar=False), query,
                      default_graph_uri="http://g")
    assert got == want


@pytest.mark.parametrize("query", MULTI_GRAPH_CORPUS,
                         ids=range(len(MULTI_GRAPH_CORPUS)))
def test_columnar_matches_reference_multigraph(dataset, query):
    got = result_bag(Engine(dataset, columnar=True), query)
    want = result_bag(Engine(dataset, columnar=False), query)
    assert got == want


@pytest.mark.parametrize("optimize", [True, False])
def test_unoptimized_columnar_agrees_too(dataset, optimize):
    query = "SELECT ?m ?c WHERE { ?m x:starring ?a . ?a x:born ?c }"
    got = result_bag(Engine(dataset, columnar=True, optimize=optimize),
                     query, default_graph_uri="http://g")
    want = result_bag(Engine(dataset, columnar=False, optimize=optimize),
                      query, default_graph_uri="http://g")
    assert got == want


def test_stats_counters_agree_on_bgp(dataset):
    query = PFX + "SELECT ?m ?c WHERE { ?m x:starring ?a . ?a x:born ?c }"
    cols = Engine(dataset, columnar=True)
    ref = Engine(dataset, columnar=False)
    cols.query(query, default_graph_uri="http://g")
    ref.query(query, default_graph_uri="http://g")
    assert cols.last_stats.pattern_matches == ref.last_stats.pattern_matches
    assert cols.last_stats.bgp_count == ref.last_stats.bgp_count
    assert cols.last_stats.intermediate_rows == ref.last_stats.intermediate_rows
