"""A seeded random SPARQL query generator over the synthetic DBpedia graph.

The differential fuzz suite (``test_fuzz_differential.py``) and the
serving-cache correctness tests draw queries from here: valid
BGP/filter/optional/group/order/limit shapes over the vocabulary that
:mod:`repro.data.dbpedia` actually generates, so fuzzed queries select
real rows instead of vacuously-empty results.

Design constraints:

* **PYTHONHASHSEED-independent.**  All randomness flows through a seeded
  ``random.Random`` over *list literals* (never sets or dict views), so
  ``generate(seed)`` returns the same query under any hash seed — a
  failing seed reported by CI reproduces locally, verbatim.
* **Plane-safe shapes.**  ``LIMIT`` without a total order is
  legitimately nondeterministic across execution planes (each may pick a
  different valid k-subset), so the generator only emits ``LIMIT``
  together with ``ORDER BY`` over *every* projected variable (ties are
  then identical rows, making any window bag-identical) and never
  combines ``LIMIT`` with ``OPTIONAL`` (unbound sort keys).
* **Shrinkable.**  A failing :class:`QuerySpec` shrinks structurally —
  dropping optionals, filters, modifiers, then patterns — to a minimal
  spec that still fails, via :func:`shrink`.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

PREFIXES = (
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
    "PREFIX dbpp: <http://dbpedia.org/property/>\n"
    "PREFIX dbpo: <http://dbpedia.org/ontology/>\n"
    "PREFIX dbpr: <http://dbpedia.org/resource/>\n"
    "PREFIX dcterms: <http://purl.org/dc/terms/>\n"
)

#: Constant pools per filterable value kind (curly-name → SPARQL tokens).
CONSTANTS = {
    "country": ["dbpr:United_States", "dbpr:India", "dbpr:France",
                "dbpr:Japan", "dbpr:Germany"],
    "studio": ["dbpr:Eskay_Movies", "dbpr:Warner_Bros", "dbpr:Paramount",
               "dbpr:Universal", "dbpr:Toho"],
    "subject": ["dbpr:American_films", "dbpr:Indian_films",
                "dbpr:1990s_films", "dbpr:2000s_films"],
    "genre": ["dbpr:Drama", "dbpr:Comedy", "dbpr:Action",
              "dbpr:Thriller"],
    "language": ["dbpr:English", "dbpr:Hindi", "dbpr:French"],
    "sponsor": ["dbpr:AirFly", "dbpr:MegaCola", "dbpr:TechCorp"],
}

#: Per-entity schemas mirroring :mod:`repro.data.dbpedia`:
#: ``(rdf:type class, [(predicate, value-kind, chained-entity)])``.
#: ``value-kind`` names a CONSTANTS pool, or is ``"int"`` / ``"str"`` /
#: ``"uri"`` (unfilterable); ``chained-entity`` says the object is a
#: subject of another schema, so the walk can extend through it.
SCHEMAS = [
    ("film", "dbpo:Film", [
        ("dbpp:starring", "uri", "actor"),
        ("rdfs:label", "str", None),
        ("dcterms:subject", "subject", None),
        ("dbpp:country", "country", None),
        ("dbpo:genre", "genre", None),
        ("dbpp:director", "uri", None),
        ("dbpp:producer", "uri", None),
        ("dbpo:language", "language", None),
        ("dbpp:studio", "studio", None),
        ("dbpo:runtime", "int", None),
    ]),
    ("actor", "dbpo:Actor", [
        ("dbpp:birthPlace", "country", None),
        ("rdfs:label", "str", None),
        ("dbpo:birthDate", "str", None),
    ]),
    ("player", "dbpo:BasketballPlayer", [
        ("dbpp:nationality", "country", None),
        ("dbpp:birthPlace", "country", None),
        ("dbpo:birthDate", "str", None),
        ("dbpp:team", "uri", "team"),
    ]),
    ("team", "dbpo:BasketballTeam", [
        ("dbpp:name", "str", None),
        ("dbpo:sponsor", "sponsor", None),
        ("dbpp:president", "uri", None),
    ]),
    ("athlete", "dbpo:Athlete", [
        ("dbpp:birthPlace", "country", None),
        ("dbpp:team", "uri", "team"),
    ]),
]

_SCHEMA_BY_NAME = {name: (cls, attrs) for name, cls, attrs in SCHEMAS}


class QuerySpec:
    """A structured query: triples + filters + modifiers, renderable to
    SPARQL text and shrinkable component-by-component."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        #: Required triple patterns: ``(subject, predicate, object)``
        #: tokens (variables start with ``?``).
        self.patterns: List[Tuple[str, str, str]] = []
        #: FILTER clauses: ``(variables-used, expression text)``.
        self.filters: List[Tuple[Tuple[str, ...], str]] = []
        #: OPTIONAL blocks, one triple each.
        self.optionals: List[Tuple[str, str, str]] = []
        self.distinct = False
        #: ``(group_var, "COUNT(?x)", alias, having-text-or-None)``.
        self.group: Optional[Tuple[str, str, str, Optional[str]]] = None
        #: LIMIT n — rendered with ORDER BY over all projected vars.
        self.limit: Optional[int] = None

    # -- derived structure ---------------------------------------------
    def bound_vars(self) -> List[str]:
        """Variables bound by required patterns, in appearance order."""
        seen: List[str] = []
        for triple in self.patterns:
            for token in triple:
                if token.startswith("?") and token not in seen:
                    seen.append(token)
        return seen

    def optional_vars(self) -> List[str]:
        bound = set(self.bound_vars())
        seen: List[str] = []
        for triple in self.optionals:
            for token in triple:
                if (token.startswith("?") and token not in bound
                        and token not in seen):
                    seen.append(token)
        return seen

    def projection(self) -> List[str]:
        if self.group is not None:
            return [self.group[0], "?" + self.group[2]]
        return self.bound_vars() + self.optional_vars()

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        lines = []
        if self.group is not None:
            group_var, agg, alias, _having = self.group
            lines.append("SELECT %s (%s AS ?%s)" % (group_var, agg, alias))
        else:
            head = " ".join(self.projection())
            lines.append("SELECT %s%s"
                         % ("DISTINCT " if self.distinct else "", head))
        lines.append("WHERE {")
        for s, p, o in self.patterns:
            lines.append("  %s %s %s ." % (s, p, o))
        for vars_used, text in self.filters:
            lines.append("  FILTER(%s)" % text)
        for s, p, o in self.optionals:
            lines.append("  OPTIONAL { %s %s %s }" % (s, p, o))
        lines.append("}")
        if self.group is not None:
            lines.append("GROUP BY %s" % self.group[0])
            if self.group[3]:
                lines.append("HAVING (%s)" % self.group[3])
        if self.limit is not None:
            # Total order over the projection: ties are identical rows,
            # so every plane's LIMIT window holds the same bag.
            lines.append("ORDER BY %s" % " ".join(self.projection()))
            lines.append("LIMIT %d" % self.limit)
        return PREFIXES + "\n".join(lines)

    def __repr__(self):
        return "QuerySpec(seed=%r, %d patterns, %d filters, %d optionals)" \
            % (self.seed, len(self.patterns), len(self.filters),
               len(self.optionals))


def _make_filter(rng: random.Random, var: str, kind: str) -> Optional[str]:
    if kind == "int":
        bound = 70 + 10 * rng.randrange(10)
        return rng.choice(["%s >= %d", "%s < %d"]) % (var, bound)
    pool = CONSTANTS.get(kind)
    if not pool:
        return None
    shape = rng.randrange(3)
    if shape == 0:
        return "%s != %s" % (var, rng.choice(pool))
    if shape == 1:
        return "%s IN (%s)" % (var, rng.choice(pool))
    picks = rng.sample(pool, 2)
    return "%s IN (%s, %s)" % (var, picks[0], picks[1])


def generate(seed: int) -> QuerySpec:
    """Deterministically generate one valid query spec from ``seed``."""
    rng = random.Random(seed)
    spec = QuerySpec(seed)
    name, cls, attrs = SCHEMAS[rng.randrange(len(SCHEMAS))]
    subject = "?" + name
    spec.patterns.append((subject, "rdf:type", cls))

    picked = rng.sample(attrs, rng.randint(1, min(3, len(attrs))))
    vars_by_kind: List[Tuple[str, str]] = []  # (var, kind) filter pool
    counter = 0
    chained: Optional[Tuple[str, str]] = None  # (var, entity)
    for pred, kind, chain in picked:
        if chain is not None:
            var = "?" + chain
            chained = (var, chain)
        else:
            var = "?v%d" % counter
            counter += 1
        spec.patterns.append((subject, pred, var))
        vars_by_kind.append((var, kind))

    # Walk through a chained entity (film→actor, player/athlete→team).
    if chained is not None and rng.random() < 0.6:
        var, entity = chained
        _cls, sub_attrs = _SCHEMA_BY_NAME[entity]
        for pred, kind, _chain in rng.sample(sub_attrs,
                                             rng.randint(1, 2)):
            sub_var = "?w%d" % counter
            counter += 1
            spec.patterns.append((var, pred, sub_var))
            vars_by_kind.append((sub_var, kind))

    # Filters on filterable bound values.
    for var, kind in vars_by_kind:
        if kind in ("uri",):
            continue
        if rng.random() < 0.3:
            text = _make_filter(rng, var, kind)
            if text is not None:
                spec.filters.append(((var,), text))

    # One OPTIONAL over an attribute the walk did not use.
    used = {p for _s, p, _o in spec.patterns}
    unused = [a for a in attrs if a[0] not in used]
    if unused and rng.random() < 0.3:
        pred, _kind, _chain = unused[rng.randrange(len(unused))]
        spec.optionals.append((subject, pred, "?opt0"))

    # Shape modifiers: grouped aggregate, DISTINCT, or ORDER BY+LIMIT.
    value_vars = [v for v, _k in vars_by_kind]
    roll = rng.random()
    if roll < 0.2 and value_vars:
        group_var = value_vars[rng.randrange(len(value_vars))]
        having = ("COUNT(%s) >= 2" % subject
                  if rng.random() < 0.3 else None)
        spec.group = (group_var, "COUNT(%s)" % subject, "n", having)
        spec.optionals = []  # keep grouped shapes simple and total
    elif roll < 0.5:
        spec.distinct = True
    if (spec.group is None and not spec.optionals
            and rng.random() < 0.3):
        spec.limit = [5, 10, 20][rng.randrange(3)]
    return spec


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def _prune(spec: QuerySpec) -> QuerySpec:
    """Drop filters/optionals that reference no-longer-bound variables."""
    bound = set(spec.bound_vars())
    spec.filters = [f for f in spec.filters
                    if all(v in bound for v in f[0])]
    spec.optionals = [o for o in spec.optionals if o[0] in bound]
    if spec.group is not None and spec.group[0] not in bound:
        spec.group = None
    if spec.optionals:
        spec.limit = None
    return spec


def _copy(spec: QuerySpec) -> QuerySpec:
    dup = QuerySpec(spec.seed)
    dup.patterns = list(spec.patterns)
    dup.filters = list(spec.filters)
    dup.optionals = list(spec.optionals)
    dup.distinct = spec.distinct
    dup.group = spec.group
    dup.limit = spec.limit
    return dup


def _shrink_candidates(spec: QuerySpec):
    """Smaller specs in decreasing-aggressiveness order."""
    if spec.limit is not None:
        dup = _copy(spec)
        dup.limit = None
        yield dup
    if spec.group is not None:
        dup = _copy(spec)
        dup.group = None
        yield dup
    if spec.distinct:
        dup = _copy(spec)
        dup.distinct = False
        yield dup
    for index in range(len(spec.optionals)):
        dup = _copy(spec)
        del dup.optionals[index]
        yield dup
    for index in range(len(spec.filters)):
        dup = _copy(spec)
        del dup.filters[index]
        yield dup
    # Never drop below one pattern (keep the query valid).
    if len(spec.patterns) > 1:
        for index in range(len(spec.patterns) - 1, 0, -1):
            dup = _copy(spec)
            del dup.patterns[index]
            yield _prune(dup)


def shrink(spec: QuerySpec,
           still_fails: Callable[[QuerySpec], bool]) -> QuerySpec:
    """Greedily remove components while ``still_fails`` holds (fixpoint)."""
    changed = True
    while changed:
        changed = False
        for candidate in _shrink_candidates(spec):
            try:
                if still_fails(candidate):
                    spec = candidate
                    changed = True
                    break
            except Exception:
                # A candidate that errors differently is not a valid
                # shrink step; keep looking.
                continue
    return spec


# ---------------------------------------------------------------------------
# Graph mutation (for stale-read hunting)
# ---------------------------------------------------------------------------

def mutate(graph, rng: random.Random, tag: int) -> str:
    """Apply one deterministic mutation to ``graph``; returns a label.

    Alternates between *adding* a fresh film (new subject, so only
    post-mutation queries can see it) and *removing* an existing
    ``dbpp:starring`` edge (chosen from a ``repr``-sorted list, so the
    pick is independent of both hash seed and index iteration order).
    """
    from repro.rdf.namespaces import DBPO, DBPP, RDF
    from repro.rdf.terms import URIRef

    if rng.random() < 0.5:
        film = URIRef("http://dbpedia.org/resource/FuzzFilm_%d" % tag)
        graph.add(film, RDF.type, DBPO.Film)
        graph.add(film, DBPP.starring,
                  URIRef("http://dbpedia.org/resource/Actor_0"))
        graph.add(film, DBPP.country,
                  URIRef("http://dbpedia.org/resource/India"))
        return "add:%s" % film
    edges = sorted(graph.triples(None, DBPP.starring, None), key=repr)
    if not edges:
        return "noop"
    s, p, o = edges[rng.randrange(len(edges))]
    graph.remove(s, p, o)
    return "remove:%r" % ((s, p, o),)
