"""Unit tests for SPARQL evaluation semantics (Section 5.2 of the paper)."""

import pytest

from repro.rdf import Dataset, Graph, Literal, URIRef
from repro.sparql import Engine


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def engine():
    g = Graph("http://g")
    g.add(uri("m1"), uri("starring"), uri("a1"))
    g.add(uri("m1"), uri("starring"), uri("a2"))
    g.add(uri("m2"), uri("starring"), uri("a1"))
    g.add(uri("m3"), uri("starring"), uri("a3"))
    g.add(uri("a1"), uri("born"), uri("usa"))
    g.add(uri("a2"), uri("born"), uri("france"))
    g.add(uri("a1"), uri("label"), Literal("Actor One"))
    g.add(uri("m1"), uri("year"), Literal(1999))
    g.add(uri("m2"), uri("year"), Literal(2005))
    g.add(uri("m3"), uri("year"), Literal(2010))
    return Engine(g)


def rows(engine, query, **kwargs):
    return set(engine.query(query, **kwargs).to_dataframe().to_records())


PFX = "PREFIX x: <http://x/>\n"


class TestBGP:
    def test_single_pattern(self, engine):
        result = rows(engine, PFX + "SELECT ?m WHERE { ?m x:starring ?a }")
        assert result == {("http://x/m1",), ("http://x/m1",),
                          ("http://x/m2",), ("http://x/m3",)}

    def test_bag_semantics_duplicates(self, engine):
        df = engine.query(
            PFX + "SELECT ?m WHERE { ?m x:starring ?a }").to_dataframe()
        assert len(df) == 4  # m1 twice

    def test_join_within_bgp(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m ?c WHERE { ?m x:starring ?a . ?a x:born ?c }""")
        assert result == {("http://x/m1", "http://x/usa"),
                          ("http://x/m1", "http://x/france"),
                          ("http://x/m2", "http://x/usa")}

    def test_concrete_subject(self, engine):
        result = rows(engine, PFX + "SELECT ?a WHERE { x:m1 x:starring ?a }")
        assert result == {("http://x/a1",), ("http://x/a2",)}

    def test_repeated_variable_must_agree(self, engine):
        g = Graph("http://g2")
        g.add(uri("n"), uri("p"), uri("n"))
        g.add(uri("n"), uri("p"), uri("other"))
        e = Engine(g)
        result = rows(e, PFX + "SELECT ?x WHERE { ?x x:p ?x }")
        assert result == {("http://x/n",)}

    def test_empty_result(self, engine):
        assert rows(engine, PFX + "SELECT ?m WHERE { ?m x:nope ?a }") == set()

    def test_variable_predicate(self, engine):
        result = rows(engine, PFX + "SELECT ?p WHERE { x:a1 ?p ?o }")
        assert result == {("http://x/born",), ("http://x/label",)}


class TestOptional:
    def test_optional_keeps_unmatched(self, engine):
        df = engine.query(PFX + """
            SELECT ?a ?c WHERE {
                ?m x:starring ?a OPTIONAL { ?a x:born ?c }
            }""").to_dataframe()
        by_actor = {}
        for actor, country in df.to_records():
            by_actor.setdefault(actor, set()).add(country)
        assert by_actor["http://x/a3"] == {None}
        assert by_actor["http://x/a1"] == {"http://x/usa"}

    def test_nested_optional(self, engine):
        df = engine.query(PFX + """
            SELECT * WHERE {
                ?m x:starring ?a
                OPTIONAL { ?a x:born ?c OPTIONAL { ?a x:label ?l } }
            }""").to_dataframe()
        assert len(df) == 4


class TestUnionFilter:
    def test_union_is_bag_concat(self, engine):
        df = engine.query(PFX + """
            SELECT ?m WHERE {
                { ?m x:starring x:a1 } UNION { ?m x:year 2010 }
            }""").to_dataframe()
        assert sorted(df.column("m")) == [
            "http://x/m1", "http://x/m2", "http://x/m3"]

    def test_filter_numeric(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m WHERE { ?m x:year ?y FILTER ( ?y >= 2005 ) }""")
        assert result == {("http://x/m2",), ("http://x/m3",)}

    def test_filter_error_eliminates_row(self, engine):
        # ?c unbound for a3's movie: comparison errors, row dropped.
        result = rows(engine, PFX + """
            SELECT ?m WHERE {
                ?m x:starring ?a OPTIONAL { ?a x:born ?c }
                FILTER ( ?c = x:usa )
            }""")
        assert result == {("http://x/m1",), ("http://x/m2",)}

    def test_filter_bound(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a WHERE {
                ?m x:starring ?a OPTIONAL { ?a x:born ?c }
                FILTER ( ! bound(?c) )
            }""")
        assert result == {("http://x/a3",)}


class TestAggregation:
    def test_group_count(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
            GROUP BY ?a""")
        assert result == {("http://x/a1", 2), ("http://x/a2", 1),
                          ("http://x/a3", 1)}

    def test_count_distinct(self, engine):
        g = Graph("http://g")
        g.add(uri("m"), uri("p"), uri("a"))
        g.add(uri("m2"), uri("p"), uri("a"))
        g.add(uri("m2"), uri("q"), uri("a"))
        e = Engine(g)
        result = rows(e, PFX + """
            SELECT ?a (COUNT(DISTINCT ?m) AS ?n) WHERE { ?m ?p ?a }
            GROUP BY ?a""")
        assert result == {("http://x/a", 2)}

    def test_having(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
            GROUP BY ?a HAVING ( COUNT(?m) >= 2 )""")
        assert result == {("http://x/a1", 2)}

    def test_having_on_alias_variable(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
            GROUP BY ?a HAVING ( ?n >= 2 )""")
        assert result == {("http://x/a1", 2)}

    def test_sum_min_max_avg(self, engine):
        result = rows(engine, PFX + """
            SELECT (SUM(?y) AS ?s) (MIN(?y) AS ?lo) (MAX(?y) AS ?hi)
                   (AVG(?y) AS ?mean)
            WHERE { ?m x:year ?y }""")
        assert result == {(1999 + 2005 + 2010, 1999, 2010,
                           (1999 + 2005 + 2010) / 3)}

    def test_count_star(self, engine):
        result = rows(engine, PFX +
                      "SELECT (COUNT(*) AS ?n) WHERE { ?m x:starring ?a }")
        assert result == {(4,)}

    def test_count_over_empty_is_zero(self, engine):
        result = rows(engine, PFX +
                      "SELECT (COUNT(?m) AS ?n) WHERE { ?m x:nope ?a }")
        assert result == {(0,)}

    def test_group_over_empty_is_empty(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:nope ?a }
            GROUP BY ?a""")
        assert result == set()

    def test_sample(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a (SAMPLE(?m) AS ?one) WHERE { ?m x:starring ?a }
            GROUP BY ?a""")
        samples = dict(result)
        assert samples["http://x/a1"] in ("http://x/m1", "http://x/m2")

    def test_non_numeric_aggregate_unbound(self, engine):
        df = engine.query(PFX + """
            SELECT ?a (SUM(?l) AS ?s) WHERE { ?a x:label ?l }
            GROUP BY ?a""").to_dataframe()
        assert df.column("s") == [None]


class TestSubqueries:
    def test_nested_select_joins_with_outer(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m ?n WHERE {
                ?m x:starring ?a
                { SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
                  GROUP BY ?a HAVING ( COUNT(?m) >= 2 ) }
            }""")
        assert result == {("http://x/m1", 2), ("http://x/m2", 2)}

    def test_subquery_projection_limits_scope(self, engine):
        # Inner ?m is projected away; outer ?m is free.
        result = rows(engine, PFX + """
            SELECT ?m ?a WHERE {
                ?m x:year 2010
                { SELECT ?a WHERE { ?m x:starring ?a } }
            }""")
        assert ("http://x/m3", "http://x/a1") in result
        assert len(result) == 3

    def test_materialization_stat(self, engine):
        engine.query(PFX + """
            SELECT * WHERE {
                ?m x:starring ?a
                { SELECT ?a WHERE { ?a x:born ?c } }
            }""")
        assert engine.last_stats.materialized_subqueries == 1


class TestModifiers:
    def test_distinct(self, engine):
        df = engine.query(PFX +
                          "SELECT DISTINCT ?m WHERE { ?m x:starring ?a }"
                          ).to_dataframe()
        assert len(df) == 3

    def test_order_by_asc_desc(self, engine):
        df = engine.query(PFX + """
            SELECT ?m ?y WHERE { ?m x:year ?y } ORDER BY DESC(?y)"""
            ).to_dataframe()
        assert df.column("y") == [2010, 2005, 1999]

    def test_limit_offset(self, engine):
        df = engine.query(PFX + """
            SELECT ?m ?y WHERE { ?m x:year ?y }
            ORDER BY ?y LIMIT 1 OFFSET 1""").to_dataframe()
        assert df.column("y") == [2005]

    def test_select_star_column_order(self, engine):
        result = engine.query(PFX + "SELECT * WHERE { ?m x:year ?y }")
        assert result.variables == ["m", "y"]


class TestMultiGraph:
    @pytest.fixture
    def dataset_engine(self):
        ds = Dataset()
        g1 = ds.create_graph("http://g1")
        g1.add(uri("e"), uri("p"), uri("v1"))
        g1.add(uri("shared"), uri("p"), uri("v1"))
        g2 = ds.create_graph("http://g2")
        g2.add(uri("e"), uri("q"), uri("v2"))
        g2.add(uri("shared"), uri("p"), uri("v2"))
        return Engine(ds)

    def test_from_single_graph(self, dataset_engine):
        result = rows(dataset_engine, PFX +
                      "SELECT ?s FROM <http://g1> WHERE { ?s x:p ?v }")
        assert result == {("http://x/e",), ("http://x/shared",)}

    def test_from_two_graphs_unions(self, dataset_engine):
        result = rows(dataset_engine, PFX + """
            SELECT ?s ?v FROM <http://g1> FROM <http://g2>
            WHERE { ?s x:p ?v }""")
        assert len(result) == 3

    def test_graph_scoping(self, dataset_engine):
        result = rows(dataset_engine, PFX + """
            SELECT ?s FROM <http://g1> FROM <http://g2> WHERE {
                GRAPH <http://g1> { ?s x:p ?v1 }
                GRAPH <http://g2> { ?s x:p ?v2 }
            }""")
        assert result == {("http://x/shared",)}

    def test_unknown_graph_raises(self, dataset_engine):
        from repro.sparql import EvaluationError
        with pytest.raises(EvaluationError):
            dataset_engine.query("SELECT * FROM <http://nope> WHERE { ?s ?p ?o }")

    def test_default_graph_uri_parameter(self, dataset_engine):
        result = rows(dataset_engine, PFX + "SELECT ?s WHERE { ?s x:q ?v }",
                      default_graph_uri="http://g2")
        assert result == {("http://x/e",)}


class TestEngineBehaviour:
    def test_stats_populated(self, engine):
        engine.query(PFX + "SELECT ?m WHERE { ?m x:starring ?a }")
        assert engine.last_stats.bgp_count == 1
        assert engine.last_stats.pattern_matches == 4

    def test_bgp_cache_hit_on_repeated_pattern(self, engine):
        # Real (column-dropping) projections, so the planner's
        # ProjectionPruning pass keeps both subqueries and the repeated
        # BGP is evaluated through the cache.
        engine.query(PFX + """
            SELECT * WHERE {
                { SELECT ?m WHERE { ?m x:starring ?a } }
                { SELECT ?m WHERE { ?m x:starring ?a } }
            }""")
        assert engine.last_stats.bgp_cache_hits >= 1

    def test_cache_disabled(self):
        g = Graph("http://g")
        g.add(uri("a"), uri("p"), uri("b"))
        e = Engine(g, cache_bgps=False)
        e.query(PFX + """
            SELECT * WHERE {
                { SELECT ?s WHERE { ?s x:p ?o } }
                { SELECT ?s WHERE { ?s x:p ?o } }
            }""")
        assert e.last_stats.bgp_cache_hits == 0

    def test_explain_renders_tree(self, engine):
        text = engine.explain(PFX + "SELECT ?m WHERE { ?m x:starring ?a }")
        assert "Project" in text and "BGP" in text

    def test_queries_executed_counter(self, engine):
        before = engine.queries_executed
        engine.query(PFX + "SELECT ?m WHERE { ?m x:year ?y }")
        assert engine.queries_executed == before + 1

    def test_extend_bind(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m ?next WHERE {
                ?m x:year ?y BIND( ?y + 1 AS ?next )
            }""")
        assert ("http://x/m3", 2011) in result
