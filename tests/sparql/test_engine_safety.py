"""Engine safety valves on the columnar plane.

Both valves must trip *mid-query* — while an exploding cross product is
still producing rows — not after the damage is done:

* ``max_intermediate_rows`` aborts inside the pattern matcher as soon as
  an intermediate table crosses the budget,
* a query ``timeout`` arms a deadline that the evaluator checks between
  operators and during row production.
"""

import time

import pytest

from repro.rdf import Graph, URIRef
from repro.sparql import Engine, EvaluationError, QueryTimeout

PFX = "PREFIX x: <http://x/>\n"

#: A deliberate Cartesian product: ?a/?b and ?c/?d share no variable.
CROSS_PRODUCT = PFX + """
    SELECT ?a ?b ?c ?d WHERE {
        ?a x:p ?b .
        ?c x:q ?d .
    }"""


def uri(name):
    return URIRef("http://x/" + name)


def cross_graph(n):
    """A graph whose CROSS_PRODUCT query yields n*n rows."""
    g = Graph("http://g")
    for i in range(n):
        g.add(uri("s%d" % i), uri("p"), uri("o%d" % i))
        g.add(uri("t%d" % i), uri("q"), uri("u%d" % i))
    return g


class TestMaxIntermediateRows:
    def test_trips_on_exploding_cross_product(self):
        engine = Engine(cross_graph(200), max_intermediate_rows=1000)
        with pytest.raises(EvaluationError, match="max_rows"):
            engine.query(CROSS_PRODUCT)

    def test_trips_mid_pattern_not_after(self):
        # 200x200 = 40k candidate rows.  Tripping mid-pattern means the
        # matcher stopped right after the budget was crossed, so the
        # observed match count stays near the budget — far below 40k.
        from repro.sparql import Evaluator, parse
        engine = Engine(cross_graph(200), max_intermediate_rows=1000)
        evaluator = Evaluator(engine.dataset, max_rows=1000)
        with pytest.raises(EvaluationError):
            evaluator.evaluate_query(parse(CROSS_PRODUCT))
        assert evaluator.stats.pattern_matches < 5000

    def test_small_queries_unaffected(self):
        engine = Engine(cross_graph(10), max_intermediate_rows=1000)
        result = engine.query(CROSS_PRODUCT)
        assert len(result) == 100

    def test_budget_boundary_is_inclusive(self):
        engine = Engine(cross_graph(10), max_intermediate_rows=100)
        assert len(engine.query(CROSS_PRODUCT)) == 100
        engine = Engine(cross_graph(10), max_intermediate_rows=99)
        with pytest.raises(EvaluationError):
            engine.query(CROSS_PRODUCT)


class TestQueryTimeout:
    def test_trips_mid_query(self):
        # Large enough that full evaluation takes well over the budget;
        # the deadline must abandon it long before completion.
        engine = Engine(cross_graph(1500))
        start = time.perf_counter()
        with pytest.raises(QueryTimeout):
            engine.query(CROSS_PRODUCT, timeout=0.02)
        elapsed = time.perf_counter() - start
        # 1500x1500 = 2.25M tuples would take far longer than this.
        assert elapsed < 1.0

    def test_no_timeout_completes(self):
        engine = Engine(cross_graph(20))
        assert len(engine.query(CROSS_PRODUCT, timeout=30.0)) == 400

    def test_deadline_checked_between_operators(self):
        from repro.sparql import Evaluator, parse
        engine = Engine(cross_graph(5))
        evaluator = Evaluator(engine.dataset,
                              deadline=time.perf_counter() - 1.0)
        with pytest.raises(QueryTimeout):
            evaluator.evaluate_query(parse(CROSS_PRODUCT))

    def test_timeout_importable_from_engine_module(self):
        # QueryTimeout moved to the evaluator (where the deadline trips);
        # the engine-level import path must keep working.
        from repro.sparql.engine import QueryTimeout as FromEngine
        assert FromEngine is QueryTimeout
