"""Differential + behavioral suite for the join subsystem.

The join corpus (:mod:`repro.workload.joins` — star, cyclic, chain,
self-join, and semi-join shapes) runs on every combination of

* executor plane: ``streaming`` (forced), ``materialized`` (forced), and
  the dict-based ``reference`` evaluator,
* ``sip`` on/off (sideways information passing: join build sides export
  key id-sets into probe-side BGP leaves),
* ``multiway`` on/off (sorted-run intersection BGP steps),

and every combination must return the identical row bag.  The optimized
engine must additionally *prove* its mechanisms through the
``sip_filtered_rows`` / ``intersect_steps`` / ``sorted_runs_built``
counters, and the soundness edges — OPTIONAL padding, MINUS, NOT EXISTS,
subquery LIMIT windows, Extend overwrites, aggregate probes — are pinned
with targeted queries.
"""

import itertools

import pytest

from repro.data import DBPEDIA_URI, build_dataset
from repro.rdf import DBPP, DBPR, Graph, URIRef
from repro.sparql import Engine
from repro.workload import JOIN_QUERIES, get_join_query

PFX = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dbpr: <http://dbpedia.org/resource/>
"""


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale=0.05)


@pytest.fixture(scope="module")
def engines(dataset):
    """Every knob combination on both columnar planes + the reference."""
    out = {"reference": Engine(dataset, columnar=False)}
    for streaming, sip, multiway in itertools.product(
            (True, False), (True, False), (True, False)):
        key = "%s/sip=%s/multiway=%s" % (
            "streaming" if streaming else "materialized", sip, multiway)
        out[key] = Engine(dataset, streaming=streaming, sip=sip,
                          multiway=multiway)
    return out


def row_bag(result):
    order = sorted(range(len(result.variables)),
                   key=lambda i: result.variables[i])
    return sorted(tuple(repr(row[i]) for i in order) for row in result.rows)


@pytest.fixture(params=[q.key for q in JOIN_QUERIES])
def join_query(request):
    return get_join_query(request.param)


class TestJoinCorpusDifferential:
    def test_all_planes_and_knobs_agree(self, engines, join_query):
        want = row_bag(engines["reference"].query(
            join_query.sparql, default_graph_uri=DBPEDIA_URI))
        assert want, "corpus query %s returns no rows at test scale" \
            % join_query.key
        for key, engine in engines.items():
            if key == "reference":
                continue
            got = row_bag(engine.query(join_query.sparql,
                                       default_graph_uri=DBPEDIA_URI))
            assert got == want, "%s disagrees on %s" % (key, join_query.key)

    def test_same_flags_same_rows_across_executors(self, engines,
                                                   join_query):
        """With identical knobs the two columnar executors must return
        literally identical rows for BGP-spine queries (the compiled
        steps are shared); join-bearing plans are compared as bags (the
        executors pick build sides differently, as documented)."""
        for sip, multiway in itertools.product((True, False), repeat=2):
            streamed = engines["streaming/sip=%s/multiway=%s"
                               % (sip, multiway)]
            materialized = engines["materialized/sip=%s/multiway=%s"
                                   % (sip, multiway)]
            a = streamed.query(join_query.sparql,
                               default_graph_uri=DBPEDIA_URI)
            b = materialized.query(join_query.sparql,
                                   default_graph_uri=DBPEDIA_URI)
            if join_query.expect == "sip":
                assert row_bag(a) == row_bag(b)
            else:
                assert a.rows == b.rows


class TestCounterProofs:
    """The mechanisms must be observable where the planner chose them.

    A fresh (function-scoped) dataset guarantees ``sorted_runs_built``
    counts this query's lazy builds instead of hitting runs cached by an
    earlier test.
    """

    def test_multiway_counters(self):
        # use_cache=False: the shared cached dataset already carries runs
        # built by other tests, which would zero this query's build count.
        dataset = build_dataset(scale=0.05, use_cache=False)
        engine = Engine(dataset)
        query = get_join_query("triangle_costar_country")
        engine.query(query.sparql, default_graph_uri=DBPEDIA_URI)
        stats = engine.last_stats
        assert stats.intersect_steps > 0
        assert stats.sorted_runs_built > 0

    def test_sip_counters(self, engines):
        engine = engines["streaming/sip=True/multiway=True"]
        query = get_join_query("sip_egypt_costar")
        engine.query(query.sparql, default_graph_uri=DBPEDIA_URI)
        assert engine.last_stats.sip_filtered_rows > 0

    def test_knobs_off_means_counters_zero(self, engines, join_query):
        engine = engines["materialized/sip=False/multiway=False"]
        engine.query(join_query.sparql, default_graph_uri=DBPEDIA_URI)
        stats = engine.last_stats
        assert stats.sip_filtered_rows == 0
        assert stats.intersect_steps == 0
        assert stats.sorted_runs_built == 0

    def test_sip_reduces_intermediate_rows(self, dataset):
        """The semi-join filter prunes rows before they exist: the
        optimized engine materializes strictly fewer intermediate rows
        than the baseline on the selective-probe corpus queries."""
        on = Engine(dataset, streaming=False, sip=True)
        off = Engine(dataset, streaming=False, sip=False)
        query = get_join_query("sip_egypt_costar")
        on.query(query.sparql, default_graph_uri=DBPEDIA_URI)
        off.query(query.sparql, default_graph_uri=DBPEDIA_URI)
        assert on.last_stats.intermediate_rows \
            < off.last_stats.intermediate_rows

    def test_planner_annotates_the_corpus(self, dataset):
        """CostBasedJoinStrategy marks what the corpus expects: sip queries
        get an eligible join, multiway queries an intersect-strategy BGP,
        cyclic queries a wcoj-strategy BGP with an elimination order."""
        from repro.sparql import algebra as alg
        engine = Engine(dataset)

        def walk(node):
            yield node
            for child in node.children():
                yield from walk(child)

        for query in JOIN_QUERIES:
            plan = engine.plan(query.sparql, DBPEDIA_URI)
            nodes = list(walk(plan.query.pattern))
            if query.expect == "sip":
                assert any(getattr(n, "sip_eligible", False)
                           for n in nodes), query.key
            if query.expect == "multiway":
                assert any(getattr(n, "strategy", None) == "intersect"
                           for n in nodes
                           if isinstance(n, alg.BGP)), query.key
            if query.expect == "wcoj":
                tagged = [n for n in nodes if isinstance(n, alg.BGP)
                          and getattr(n, "strategy", None) == "wcoj"]
                assert tagged, query.key
                for n in tagged:
                    order = n.eliminate
                    assert len(order) == len(
                        {v.name for t in n.triples for v in t
                         if hasattr(v, "name")}), query.key


class TestSipSoundnessEdges:
    """Queries built to trip every suspension rule if it were missing."""

    CASES = {
        # OPTIONAL whose right side shares the join variable: pruning
        # inside the optional would turn extensions into null padding.
        "optional_padding": """
            SELECT ?a ?film ?date WHERE {
                { SELECT DISTINCT ?a WHERE {
                      ?a dbpp:birthPlace dbpr:Egypt .
                  } }
                ?film dbpp:starring ?a .
                OPTIONAL { ?a dbpo:birthDate ?date }
            }""",
        # MINUS: right rows outside the key set can exclude nothing, but
        # rows inside it must all be seen.
        "minus_birthplace": """
            SELECT ?a ?film WHERE {
                { SELECT DISTINCT ?a WHERE {
                      ?a dbpp:birthPlace dbpr:Egypt .
                  } }
                ?film dbpp:starring ?a .
                MINUS { ?film dbpp:country dbpr:India }
            }""",
        # NOT EXISTS: the streaming plane must not export inner->outer.
        "not_exists": """
            SELECT ?a ?film WHERE {
                { SELECT DISTINCT ?a WHERE {
                      ?a dbpp:birthPlace dbpr:Egypt .
                  } }
                ?film dbpp:starring ?a .
                FILTER NOT EXISTS { ?film dbpp:country dbpr:India }
            }""",
        "exists": """
            SELECT ?a ?film WHERE {
                { SELECT DISTINCT ?a WHERE {
                      ?a dbpp:birthPlace dbpr:Egypt .
                  } }
                ?film dbpp:starring ?a .
                FILTER EXISTS { ?film dbpp:country dbpr:United_States }
            }""",
        # A subquery LIMIT window on the probe side: leaf pruning below
        # the window would change *which* rows it selects.
        "subquery_limit": """
            SELECT ?a ?film WHERE {
                { SELECT DISTINCT ?a WHERE {
                      ?a dbpp:birthPlace dbpr:Egypt .
                  } }
                { SELECT ?film ?a WHERE {
                      ?film dbpp:starring ?a .
                  } ORDER BY ?film ?a LIMIT 40 }
            }""",
        # The probe aggregates over the shared variable: group keys may
        # be pruned, group *contents* must not be.
        "aggregate_probe": """
            SELECT ?a ?n WHERE {
                { SELECT DISTINCT ?a WHERE {
                      ?a dbpp:birthPlace dbpr:Egypt .
                  } }
                { SELECT ?a (COUNT(?film) AS ?n) WHERE {
                      ?film dbpp:starring ?a .
                  } GROUP BY ?a }
            }""",
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_sip_changes_nothing(self, engines, case):
        query = PFX + self.CASES[case]
        want = row_bag(engines["reference"].query(
            query, default_graph_uri=DBPEDIA_URI))
        for key, engine in engines.items():
            if key == "reference":
                continue
            got = row_bag(engine.query(query,
                                       default_graph_uri=DBPEDIA_URI))
            assert got == want, "%s disagrees on %s" % (key, case)

    def test_empty_build_side_short_circuits(self, engines):
        query = PFX + """
            SELECT ?a ?film WHERE {
                { SELECT ?a (COUNT(?f) AS ?n) WHERE {
                      ?f dbpp:starring ?a .
                  } GROUP BY ?a HAVING (COUNT(?f) > 100000) }
                ?film dbpp:starring ?a .
            }"""
        for key, engine in engines.items():
            result = engine.query(query, default_graph_uri=DBPEDIA_URI)
            assert len(result) == 0, key


class TestSortedRunLifecycle:
    def test_mutation_invalidates_runs_mid_session(self):
        """A triple added after runs were built must be visible to the
        next multiway evaluation — the runs are invalidated, not stale."""
        graph = Graph("urn:runs")
        actor = DBPR["RunActor"]
        for i in range(12):
            graph.add(DBPR["RunFilm_%d" % i], DBPP.starring, actor)
            graph.add(DBPR["RunFilm_%d" % i], DBPP.country, DBPR.Narnia)
        engine = Engine(graph, multiway=True, plan_cache_size=0)
        query = """
            PREFIX dbpp: <http://dbpedia.org/property/>
            PREFIX dbpr: <http://dbpedia.org/resource/>
            SELECT ?film WHERE {
                ?film dbpp:starring dbpr:RunActor .
                ?film dbpp:country dbpr:Narnia .
            }"""
        first = engine.query(query, default_graph_uri="urn:runs")
        assert len(first) == 12
        assert graph.sorted_runs_built > 0
        graph.add(DBPR.RunFilm_new, DBPP.starring, actor)
        graph.add(DBPR.RunFilm_new, DBPP.country, DBPR.Narnia)
        second = engine.query(query, default_graph_uri="urn:runs")
        assert len(second) == 13

    def test_topk_window_agrees_across_planes_on_intersect_bgp(self):
        """Regression: the streaming TopK-over-BGP fusion must compile
        with the BGP's planner-chosen strategy — a tie-heavy ORDER BY
        window selects its k-subset from the BGP's production order, so
        a strategy mismatch between planes surfaces as different bags."""
        dataset = build_dataset(scale=0.05)
        query = PFX + """
            SELECT ?film ?actor ?country WHERE {
                ?film dbpp:country ?country .
                ?film dbpp:starring ?actor .
                ?actor dbpp:birthPlace ?country .
            } ORDER BY ?country LIMIT 4"""
        streamed = Engine(dataset, streaming=True).query(
            query, default_graph_uri=DBPEDIA_URI)
        materialized = Engine(dataset, streaming=False).query(
            query, default_graph_uri=DBPEDIA_URI)
        assert streamed.rows == materialized.rows

    def test_forced_multiway_matches_reference_on_micro_graph(self):
        """multiway=True forces intersection even where the planner would
        decline; results must still match the reference plane."""
        graph = Graph("urn:micro")
        for i in range(6):
            graph.add(URIRef("urn:f%d" % i), DBPP.starring,
                      URIRef("urn:a%d" % (i % 3)))
            graph.add(URIRef("urn:f%d" % i), DBPP.country,
                      URIRef("urn:c%d" % (i % 2)))
        query = """
            PREFIX dbpp: <http://dbpedia.org/property/>
            SELECT ?f ?a ?c WHERE {
                ?f dbpp:starring ?a .
                ?f dbpp:country ?c .
            }"""
        forced = Engine(graph, multiway=True)
        reference = Engine(graph, columnar=False)
        assert row_bag(forced.query(query, default_graph_uri="urn:micro")) \
            == row_bag(reference.query(query, default_graph_uri="urn:micro"))
