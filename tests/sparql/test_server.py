"""The concurrent serving tier: admission control, budgets, cancellation."""

import threading

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.sparql import (Engine, MalformedQuery, QueryCancelled,
                          QueryServer, ResourceExhausted, ServerOverloaded,
                          TransientError)


def uri(name):
    return URIRef("http://x/" + name)


def small_graph(n=20):
    g = Graph("http://g")
    for i in range(n):
        g.add(uri("s%d" % i), uri("p"), Literal(i))
    return g


QUERY = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v }"
#: A two-pattern cross product: n rows -> n*n intermediate rows, slow
#: enough (pure Python) to cancel or time out mid-evaluation.
CROSS = "SELECT * WHERE { ?a <http://x/p> ?b . ?c <http://x/p> ?d }"


@pytest.fixture
def server():
    with QueryServer(Engine(small_graph()), workers=2) as s:
        yield s


class TestBasicServing:
    def test_submit_and_result(self, server):
        ticket = server.submit(QUERY)
        result = ticket.result(timeout=10.0)
        assert len(result) == 20
        assert ticket.state == "done"
        assert ticket.error() is None
        assert ticket.waited is not None and ticket.elapsed is not None

    def test_execute_sync_helper(self, server):
        assert len(server.execute(QUERY)) == 20

    def test_stats_after_success(self, server):
        server.execute(QUERY)
        stats = server.stats.as_dict()
        assert stats["submitted"] == stats["admitted"] == 1
        assert stats["completed"] == 1
        assert stats["shed"] == stats["failed"] == stats["cancelled"] == 0

    def test_in_flight_drains_to_zero(self, server):
        tickets = [server.submit(QUERY) for _ in range(4)]
        for ticket in tickets:
            ticket.result(timeout=10.0)
        # Event-driven drain: resolved tickets release their in-flight
        # slots just after resolving; wait on the idle condition instead
        # of polling wall-clock.
        assert server.wait_idle(timeout=5.0)
        assert server.in_flight == 0

    def test_matches_direct_engine(self, server):
        direct = sorted(server.engine.query(QUERY).rows, key=repr)
        tickets = [server.submit(QUERY) for _ in range(6)]
        for ticket in tickets:
            assert sorted(ticket.result(timeout=10.0).rows,
                          key=repr) == direct


class TestConcurrency:
    def test_many_tenants_under_load(self):
        """No deadlock, no lost tickets, results identical to the direct
        engine, even with mixed malformed traffic."""
        engine = Engine(small_graph(50))
        direct = sorted(engine.query(QUERY).rows, key=repr)
        with QueryServer(engine, workers=4, queue_size=64) as server:
            outcomes = []

            def client(k):
                query = QUERY if k % 5 else "SELECT nope"
                try:
                    ticket = server.submit(query, tenant="t%d" % (k % 3))
                    outcomes.append(("ok", ticket.result(timeout=30.0)))
                except MalformedQuery:
                    outcomes.append(("malformed", None))
                except ServerOverloaded:
                    outcomes.append(("shed", None))

            threads = [threading.Thread(target=client, args=(k,))
                       for k in range(30)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(thread.is_alive() for thread in threads)
            stats = server.stats.as_dict()
        assert len(outcomes) == 30
        kinds = [kind for kind, _ in outcomes]
        assert kinds.count("malformed") == 6
        for kind, result in outcomes:
            if kind == "ok":
                assert sorted(result.rows, key=repr) == direct
        assert stats["completed"] + stats["failed"] + stats["shed"] == 30
        assert stats["failed"] == 6
        assert stats["peak_in_flight"] >= 1


class TestAdmissionControl:
    def test_tenant_cap_sheds(self):
        engine = Engine(small_graph())
        with QueryServer(engine, workers=1, queue_size=8,
                         max_inflight_per_tenant=2) as server:
            with server._plan_lock:  # pin the worker mid-ticket
                first = server.submit(QUERY, tenant="greedy")
                second = server.submit(QUERY, tenant="greedy")
                with pytest.raises(ServerOverloaded, match="greedy"):
                    server.submit(QUERY, tenant="greedy")
                # Another tenant is unaffected by greedy's cap.
                other = server.submit(QUERY, tenant="polite")
            for ticket in (first, second, other):
                assert len(ticket.result(timeout=10.0)) == 20
            assert server.stats.shed == 1

    def test_queue_full_sheds_and_releases_tenant_count(self):
        engine = Engine(small_graph())
        with QueryServer(engine, workers=1, queue_size=1) as server:
            with server._plan_lock:
                running = server.submit(QUERY)   # occupies the worker
                # The running event fires once the worker dequeued the
                # ticket (just before it blocks on the held plan lock),
                # guaranteeing the queue slot is free — no polling.
                assert running.wait_running(timeout=5.0)
                queued = server.submit(QUERY)    # fills the queue
                with pytest.raises(ServerOverloaded, match="queue full"):
                    server.submit(QUERY)
            assert len(running.result(timeout=10.0)) == 20
            assert len(queued.result(timeout=10.0)) == 20
        # The shed request must not leak an in-flight slot.
        assert server.in_flight == 0
        assert server.stats.shed == 1
        assert server.stats.admitted == 2

    def test_shed_request_consumes_no_evaluator_time(self):
        engine = Engine(small_graph())
        with QueryServer(engine, workers=1, queue_size=4,
                         max_inflight_per_tenant=1) as server:
            with server._plan_lock:
                first = server.submit(QUERY, tenant="t")
                executed = engine.queries_executed
                with pytest.raises(ServerOverloaded):
                    server.submit(QUERY, tenant="t")
                assert engine.queries_executed == executed
            first.result(timeout=10.0)

    def test_submit_after_shutdown_sheds(self):
        server = QueryServer(Engine(small_graph()), workers=1)
        server.shutdown()
        with pytest.raises(ServerOverloaded, match="shut down"):
            server.submit(QUERY)


class TestBudgets:
    def test_per_request_timeout(self):
        with QueryServer(Engine(small_graph(60)), workers=1) as server:
            ticket = server.submit(CROSS, timeout=0.0)
            with pytest.raises(TransientError):
                ticket.result(timeout=10.0)
            assert ticket.state == "failed"
            assert server.stats.errors_by_class == {"TransientError": 1}

    def test_per_request_row_budget(self):
        with QueryServer(Engine(small_graph(60)), workers=1) as server:
            error = server.submit(CROSS, max_rows=100).error(timeout=10.0)
            assert isinstance(error, ResourceExhausted)

    def test_default_budgets_apply(self):
        with QueryServer(Engine(small_graph(60)), workers=1,
                         default_max_rows=100) as server:
            assert isinstance(server.submit(CROSS).error(timeout=10.0),
                              ResourceExhausted)
            # A per-request override loosens the default.
            result = server.submit(CROSS, max_rows=10000).result(timeout=30.0)
            assert len(result) == 3600

    def test_malformed_query_classified(self, server):
        error = server.submit("SELECT WHERE {").error(timeout=10.0)
        assert isinstance(error, MalformedQuery)
        assert not error.retryable


class TestCancellation:
    def test_cancel_while_queued_costs_nothing(self):
        engine = Engine(small_graph())
        with QueryServer(engine, workers=1, queue_size=4) as server:
            with server._plan_lock:
                blocker = server.submit(QUERY)
                victim = server.submit(QUERY)
                victim.cancel("client went away")
                executed = engine.queries_executed
            with pytest.raises(QueryCancelled):
                victim.result(timeout=10.0)
            assert victim.state == "cancelled"
            # Zero evaluator work: fresh stats, nothing pulled.
            assert victim.stats is not None
            assert victim.stats.intermediate_rows == 0
            assert victim.stats.rows_pulled == 0
            assert engine.queries_executed == executed
            blocker.result(timeout=10.0)
            assert server.stats.cancelled == 1

    def test_cancel_mid_query_stops_evaluator_work(self):
        # 300 rows -> a 90k-row cross product, far more evaluator work
        # than the cancellation checkpoints' ~1k-row granularity.
        engine = Engine(small_graph(300))
        with QueryServer(engine, workers=1) as server:
            ticket = server.submit(CROSS, max_rows=10_000_000)
            # Cancel as soon as a worker owns the ticket (event-driven):
            # the token lands before or during evaluation, and the
            # evaluator's checkpoints stop the cross product mid-stream.
            assert ticket.wait_running(timeout=10.0)
            ticket.cancel("impatient test")
            error = ticket.error(timeout=30.0)
            assert isinstance(error, QueryCancelled)
            assert ticket.state == "cancelled"
            # The evaluator stopped mid-stream: the stats attached to the
            # failure show it produced only a fraction of the 90k rows.
            assert ticket.stats is not None
            produced = max(ticket.stats.intermediate_rows,
                           ticket.stats.rows_pulled)
            assert produced < 90_000
            assert server.stats.cancelled == 1

    def test_cancel_after_completion_is_noop(self, server):
        ticket = server.submit(QUERY)
        result = ticket.result(timeout=10.0)
        ticket.cancel("too late")
        assert ticket.state == "done"
        assert ticket.result() is result


class TestLifecycle:
    def test_shutdown_drains_queue(self):
        server = QueryServer(Engine(small_graph()), workers=2)
        tickets = [server.submit(QUERY) for _ in range(5)]
        server.shutdown(wait=True)
        for ticket in tickets:
            assert len(ticket.result(timeout=1.0)) == 20

    def test_shutdown_idempotent(self):
        server = QueryServer(Engine(small_graph()), workers=1)
        server.shutdown()
        server.shutdown()

    def test_constructor_validation(self):
        engine = Engine(small_graph())
        with pytest.raises(ValueError):
            QueryServer(engine, workers=0)
        with pytest.raises(ValueError):
            QueryServer(engine, queue_size=0)
