"""Correctness of the serving-tier result cache.

Covers the cache's contract layer by layer: accounting (hit/miss/evict
counters), bounded growth (global and per-tenant quotas, oversized-entry
rejection), invalidation (mutation-then-resubmit returns fresh rows),
single-flight coalescing (N concurrent identical submits share one
evaluator run; a cancelled leader does not poison followers), and the
never-cache-a-failure rule."""

import threading
import time

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.sparql import (Engine, QueryCancelled, ResourceExhausted,
                          ResultCache, ResultSet, approximate_result_bytes)
from repro.sparql.server import QueryServer

QUERY = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v }"
CROSS = ("SELECT ?a ?b WHERE { ?a <http://x/p> ?x . ?b <http://x/p> ?y }")


def small_graph(n=8):
    g = Graph("http://g")
    for i in range(n):
        g.add(URIRef("http://x/s%d" % i), URIRef("http://x/p"), Literal(i))
    return g


def result_of(n):
    return ResultSet(["s"], [(URIRef("http://x/r%d" % i),) for i in range(n)])


def named_bag(result):
    return sorted(
        tuple(sorted((v, repr(t)) for v, t in zip(result.variables, row)))
        for row in result.rows)


# ---------------------------------------------------------------------------
# Accounting and bounds (cache unit level)
# ---------------------------------------------------------------------------

class TestAccounting:
    def test_hit_miss_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k1") is None
        cache.put("k1", result_of(3))
        got = cache.get("k1")
        assert got is not None and len(got[0]) == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.inserts == 1

    def test_lru_eviction_order_and_counter(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", result_of(1))
        cache.put("b", result_of(1))
        assert cache.get("a") is not None  # a is now most-recent
        evicted = cache.put("c", result_of(1))
        assert evicted == 1
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts(self):
        entry = approximate_result_bytes(result_of(10))
        cache = ResultCache(max_entries=100, max_bytes=int(entry * 2.5))
        cache.put("a", result_of(10))
        cache.put("b", result_of(10))
        assert len(cache) == 2
        cache.put("c", result_of(10))  # 3 entries bust the byte budget
        assert len(cache) == 2 and "a" not in cache
        assert cache.total_bytes <= int(entry * 2.5)

    def test_oversized_entry_rejected_unless_forced(self):
        entry = approximate_result_bytes(result_of(50))
        cache = ResultCache(max_entry_bytes=entry - 1)
        assert cache.put("big", result_of(50)) == 0
        assert "big" not in cache
        assert cache.stats.rejected == 1
        cache.put("big", result_of(50), force=True)
        assert "big" in cache

    def test_reinsert_replaces_without_double_accounting(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", result_of(5))
        before = cache.total_bytes
        cache.put("k", result_of(5))
        assert len(cache) == 1
        assert cache.total_bytes == before

    def test_invalidate_and_clear(self):
        cache = ResultCache()
        cache.put("k", result_of(1))
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        cache.put("k2", result_of(1))
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes == 0


class TestTenantQuotas:
    def test_tenant_entry_quota_evicts_own_entries_only(self):
        cache = ResultCache(max_entries=100, tenant_max_entries=2)
        cache.put("b1", result_of(1), tenant="B")
        for i in range(5):
            cache.put("a%d" % i, result_of(1), tenant="A")
        entries, _ = cache.tenant_usage("A")
        assert entries == 2
        assert "a3" in cache and "a4" in cache
        assert "b1" in cache  # B untouched by A's churn

    def test_tenant_byte_quota(self):
        entry = approximate_result_bytes(result_of(10))
        cache = ResultCache(tenant_max_bytes=int(entry * 2.5))
        for i in range(4):
            cache.put("a%d" % i, result_of(10), tenant="A")
        _, nbytes = cache.tenant_usage("A")
        assert nbytes <= int(entry * 2.5)

    def test_global_pressure_evicts_inserter_first(self):
        """Tenant A churning past the global cap cannot starve B."""
        cache = ResultCache(max_entries=4)
        cache.put("b1", result_of(1), tenant="B")
        cache.put("b2", result_of(1), tenant="B")
        for i in range(10):
            cache.put("a%d" % i, result_of(1), tenant="A")
        assert "b1" in cache and "b2" in cache
        entries_a, _ = cache.tenant_usage("A")
        assert entries_a == 2  # A squeezed into what B left free

    def test_fresh_entry_exceeding_tenant_quota_does_not_stick(self):
        entry = approximate_result_bytes(result_of(20))
        cache = ResultCache(tenant_max_bytes=entry - 1)
        cache.put("a", result_of(20), tenant="A")
        assert "a" not in cache
        cache.put("a", result_of(20), tenant="A", force=True)
        assert "a" in cache  # cache=True forces past the quota


# ---------------------------------------------------------------------------
# Server integration
# ---------------------------------------------------------------------------

class TestServerCache:
    def test_hit_miss_bypass_states(self):
        cache = ResultCache()
        with QueryServer(Engine(small_graph()), workers=2,
                         result_cache=cache) as server:
            t1 = server.submit(QUERY)
            r1 = t1.result()
            t2 = server.submit(QUERY)
            r2 = t2.result()
            t3 = server.submit(QUERY, cache=False)
            r3 = t3.result()
            assert (t1.cache_state, t2.cache_state, t3.cache_state) \
                == ("miss", "hit", "bypass")
            assert named_bag(r1) == named_bag(r2) == named_bag(r3)
            stats = server.stats.as_dict()
            assert stats["cache_hits"] == 1
            assert stats["cache_misses"] == 1
            assert stats["completed"] == 3

    def test_hit_shares_producing_executions_stats(self):
        cache = ResultCache()
        with QueryServer(Engine(small_graph()), workers=1,
                         result_cache=cache) as server:
            t1 = server.submit(QUERY)
            t1.result()
            t2 = server.submit(QUERY)
            t2.result()
            assert t2.stats is t1.stats  # the hit reports the real work
            assert t2.elapsed == 0.0

    def test_invalid_cache_knob_rejected(self):
        with QueryServer(Engine(small_graph()), workers=1) as server:
            with pytest.raises(ValueError):
                server.submit(QUERY, cache="always")

    def test_mutation_then_resubmit_returns_fresh_rows(self):
        g = small_graph(4)
        cache = ResultCache()
        with QueryServer(Engine(g), workers=1,
                         result_cache=cache) as server:
            t1 = server.submit(QUERY)
            assert len(t1.result()) == 4
            g.add(URIRef("http://x/s99"), URIRef("http://x/p"), Literal(99))
            t2 = server.submit(QUERY)
            assert len(t2.result()) == 5
            assert t2.cache_state == "miss"  # old entry unreachable
            g.remove(URIRef("http://x/s99"), URIRef("http://x/p"),
                     Literal(99))
            t3 = server.submit(QUERY)
            assert len(t3.result()) == 4
            assert t3.cache_state == "miss"

    def test_same_length_replace_still_invalidates(self):
        """remove+add netting an unchanged triple count must not serve
        the pre-mutation rows (the fingerprint carries Graph.version)."""
        g = small_graph(4)
        cache = ResultCache()
        with QueryServer(Engine(g), workers=1,
                         result_cache=cache) as server:
            rows1 = named_bag(server.submit(QUERY).result())
            g.remove(URIRef("http://x/s0"), URIRef("http://x/p"),
                     Literal(0))
            g.add(URIRef("http://x/s0"), URIRef("http://x/p"),
                  Literal(1000))
            assert len(g) == 4 * 1  # same length as before
            t2 = server.submit(QUERY)
            rows2 = named_bag(t2.result())
            assert t2.cache_state == "miss"
            assert rows1 != rows2

    def test_failed_execution_never_inserted(self):
        cache = ResultCache()
        with QueryServer(Engine(small_graph(12)), workers=1,
                         result_cache=cache) as server:
            err = server.submit(CROSS, max_rows=3).error()
            assert isinstance(err, ResourceExhausted)
            assert len(cache) == 0
            assert server.stats.failed == 1
            # And a successful run afterwards does insert.
            assert len(server.submit(QUERY).result()) == 12
            assert len(cache) == 1

    def test_cached_result_busting_row_budget_executes_instead(self):
        """A hit may not smuggle rows past this request's max_rows."""
        cache = ResultCache()
        with QueryServer(Engine(small_graph(12)), workers=1,
                         result_cache=cache) as server:
            assert len(server.submit(QUERY).result()) == 12
            ticket = server.submit(QUERY, max_rows=3)
            assert isinstance(ticket.error(), ResourceExhausted)
            assert ticket.cache_state == "bypass"


# ---------------------------------------------------------------------------
# Single-flight coalescing
# ---------------------------------------------------------------------------

class _GatedEngine:
    """Wraps ``engine.evaluate_plan`` with an entry event, a release gate
    and a call counter, so coalescing tests control exactly when the
    leader's execution finishes."""

    def __init__(self, engine):
        self.engine = engine
        self.calls = 0
        self.entered = threading.Event()
        self.gate = threading.Event()
        self.tokens = []
        self._inner = engine.evaluate_plan
        self._lock = threading.Lock()
        engine.evaluate_plan = self._wrapped

    def _wrapped(self, plan, default_graph_uri=None, timeout=None,
                 cancel=None, max_rows=None):
        with self._lock:
            self.calls += 1
            self.tokens.append(cancel)
        self.entered.set()
        assert self.gate.wait(5.0), "coalescing test gate never released"
        if cancel is not None and cancel.cancelled:
            raise QueryCancelled("cancelled at test checkpoint")
        return self._inner(plan, default_graph_uri=default_graph_uri,
                           timeout=timeout, cancel=cancel,
                           max_rows=max_rows)


def _wait_for_waiters(cache, server, key, count, timeout=5.0):
    """Park until ``count`` followers are coalesced behind ``key``."""
    deadline = time.monotonic() + timeout
    while cache.flight_waiters(key) < count:
        assert time.monotonic() < deadline, \
            "only %d waiters materialized" % cache.flight_waiters(key)
        time.sleep(0.002)


class TestCoalescing:
    def test_n_concurrent_identical_submits_one_execution(self):
        n = 4
        engine = Engine(small_graph())
        cache = ResultCache()
        gated = _GatedEngine(engine)
        with QueryServer(engine, workers=n, result_cache=cache) as server:
            key = engine.result_key(QUERY)
            tickets = [server.submit(QUERY) for _ in range(n)]
            assert gated.entered.wait(5.0)
            _wait_for_waiters(cache, server, key, n - 1)
            gated.gate.set()
            results = [t.result(5.0) for t in tickets]
        assert gated.calls == 1
        bags = [named_bag(r) for r in results]
        assert all(bag == bags[0] for bag in bags)
        states = sorted(t.cache_state for t in tickets)
        assert states == ["coalesced"] * (n - 1) + ["miss"]
        assert server.stats.coalesced == n - 1
        assert server.stats.cache_misses == 1
        assert server.stats.completed == n

    def test_cancelled_leader_does_not_poison_followers(self):
        engine = Engine(small_graph())
        cache = ResultCache()
        gated = _GatedEngine(engine)
        with QueryServer(engine, workers=2, result_cache=cache) as server:
            key = engine.result_key(QUERY)
            leader = server.submit(QUERY)
            assert gated.entered.wait(5.0)
            follower = server.submit(QUERY)
            _wait_for_waiters(cache, server, key, 1)
            assert leader.cancel_token is gated.tokens[0]
            leader.cancel("client gave up")
            gated.gate.set()
            # Leader resolves cancelled; the follower re-leads and wins.
            assert isinstance(leader.error(5.0), QueryCancelled)
            assert len(follower.result(5.0)) == 8
        assert gated.calls == 2  # aborted leader + the follower's re-run
        assert follower.cache_state == "miss"
        assert server.stats.cancelled == 1
        assert server.stats.completed == 1
        assert len(cache) == 1  # only the successful execution inserted

    def test_follower_cancelled_while_parked_resolves_cancelled(self):
        engine = Engine(small_graph())
        cache = ResultCache()
        gated = _GatedEngine(engine)
        with QueryServer(engine, workers=2, result_cache=cache) as server:
            key = engine.result_key(QUERY)
            leader = server.submit(QUERY)
            assert gated.entered.wait(5.0)
            follower = server.submit(QUERY)
            _wait_for_waiters(cache, server, key, 1)
            follower.cancel("follower gave up")
            gated.gate.set()
            assert len(leader.result(5.0)) == 8
            assert isinstance(follower.error(5.0), QueryCancelled)
        assert gated.calls == 1
