"""Property tests: the optimized join algorithms match a brute-force
reference implementation of the SPARQL semantics (Section 5.2)."""

from hypothesis import given, settings, strategies as st

from repro.rdf import Literal
from repro.sparql.solution import (compatible, distinct, hash_join,
                                   in_scope_variables, left_join, merge,
                                   project)

VARS = ["a", "b", "c"]
_values = st.one_of(st.none(), st.integers(min_value=0, max_value=3))


def make_mapping(values):
    return {v: Literal(x) for v, x in zip(VARS, values) if x is not None}


_mappings = st.tuples(_values, _values, _values).map(make_mapping)
_multisets = st.lists(_mappings, max_size=12)


def reference_join(left, right):
    return [merge(l, r) for l in left for r in right if compatible(l, r)]


def reference_left_join(left, right):
    out = []
    for l in left:
        matches = [merge(l, r) for r in right if compatible(l, r)]
        out.extend(matches if matches else [l])
    return out


def as_bag(multiset):
    return sorted(tuple(sorted((k, repr(v)) for k, v in mu.items()))
                  for mu in multiset)


def common_vars(left, right):
    lv = in_scope_variables(left)
    return [v for v in in_scope_variables(right) if v in lv]


class TestCompatibility:
    def test_empty_mapping_compatible_with_all(self):
        assert compatible({}, {"a": Literal(1)})

    def test_disagreement_incompatible(self):
        assert not compatible({"a": Literal(1)}, {"a": Literal(2)})

    def test_disjoint_domains_compatible(self):
        assert compatible({"a": Literal(1)}, {"b": Literal(2)})

    def test_merge_prefers_second_on_shared(self):
        merged = merge({"a": Literal(1)}, {"b": Literal(2)})
        assert set(merged) == {"a", "b"}


@settings(max_examples=120, deadline=None)
@given(_multisets, _multisets)
def test_hash_join_matches_reference(left, right):
    common = common_vars(left, right)
    assert as_bag(hash_join(left, right, common)) == \
        as_bag(reference_join(left, right))


@settings(max_examples=120, deadline=None)
@given(_multisets, _multisets)
def test_left_join_matches_reference(left, right):
    common = common_vars(left, right)
    assert as_bag(left_join(left, right, common)) == \
        as_bag(reference_left_join(left, right))


@settings(max_examples=60, deadline=None)
@given(_multisets)
def test_join_with_self_is_idempotent_on_distinct(ms):
    unique = distinct(ms)
    common = in_scope_variables(unique)
    # For fully-bound uniform mappings, self-join reproduces the set.
    fully_bound = [mu for mu in unique if len(mu) == len(VARS)]
    joined = hash_join(fully_bound, fully_bound, common)
    assert as_bag(joined) == as_bag(fully_bound)


@settings(max_examples=60, deadline=None)
@given(_multisets)
def test_project_keeps_multiplicity(ms):
    out = project(ms, ["a"])
    assert len(out) == len(ms)
    for mu in out:
        assert set(mu) <= {"a"}


@settings(max_examples=60, deadline=None)
@given(_multisets, _multisets)
def test_left_join_never_loses_left_rows(left, right):
    common = common_vars(left, right)
    assert len(left_join(left, right, common)) >= len(left)
