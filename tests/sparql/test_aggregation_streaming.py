"""Differential + behavioral suite for streaming hash aggregation.

Three execution planes answer every grouped query here:

* ``streaming``    — ``Engine(streaming=True)``: ``Group`` runs as a
  streaming hash aggregation (or the index-backed COUNT fast path),
* ``materialized`` — ``Engine(streaming=False)``: the table-at-a-time
  ``Group`` operator, the differential oracle,
* ``reference``    — ``Engine(columnar=False)``: the seed dict-based
  evaluator.

They must agree on the case studies and on a synthetic grouped workload
covering every aggregate function, DISTINCT variants, HAVING, implicit
groups, and unbound inputs.  The streaming plane must additionally
*prove* its behavior through the ``groups_built`` / ``accumulator_rows``
/ ``rows_pulled`` counters — in particular that the single-pattern COUNT
shape touches no rows at all.

The ``TestAggregateBugfixes`` classes pin the GROUP_CONCAT separator and
AVG/SUM numeric-promotion behavior (previously untested) on all planes.
"""

import pytest

from repro.data import DBPEDIA_URI, build_dataset
from repro.rdf import (Dataset, Graph, Literal, TermDictionary, URIRef)
from repro.rdf.terms import XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER
from repro.sparql import Engine
from repro.workload import CASE_STUDIES, get_case_study

PFX = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX x: <http://x/>
"""

COUNT_FILMS = PFX + """
SELECT ?actor (COUNT(?film) AS ?n) WHERE {
    ?film dbpp:starring ?actor .
} GROUP BY ?actor"""

AVG_RUNTIME = PFX + """
SELECT ?country (AVG(?rt) AS ?mean) WHERE {
    ?film dbpp:country ?country .
    ?film dbpo:runtime ?rt .
} GROUP BY ?country"""


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale=0.05)


@pytest.fixture(scope="module")
def engines(dataset):
    return {
        "streaming": Engine(dataset, streaming=True),
        "materialized": Engine(dataset, streaming=False),
        "reference": Engine(dataset, columnar=False),
    }


@pytest.fixture(scope="module")
def small_dataset():
    """A handcrafted graph exercising aggregation edge cases: unbound
    cells (OPTIONAL), duplicate values over a multi-valued predicate,
    mixed numeric datatypes, and non-numeric values."""
    d = TermDictionary()
    ds = Dataset()
    g = Graph("http://g", dictionary=d)
    for i in range(12):
        g.add(uri("m%d" % i), uri("type"), uri("Film"))
        g.add(uri("m%d" % i), uri("starring"), uri("a%d" % (i % 4)))
        g.add(uri("m%d" % i), uri("year"), Literal(1990 + i))
    # A second starring edge for some films: multi-valued fan-out.
    for i in range(0, 12, 3):
        g.add(uri("m%d" % i), uri("starring"), uri("a%d" % ((i + 1) % 4)))
    # Mixed numeric datatypes on one predicate.
    g.add(uri("m0"), uri("score"), Literal(7))                      # integer
    g.add(uri("m1"), uri("score"), Literal("7.5", XSD_DECIMAL))     # decimal
    g.add(uri("m2"), uri("score"), Literal(8.0))                    # double
    # A predicate whose objects are not numeric (poisons SUM/AVG).
    g.add(uri("m0"), uri("tag"), Literal("good"))
    g.add(uri("m1"), uri("tag"), Literal("bad"))
    for i in range(4):
        if i != 3:  # a3 has no birthplace: OPTIONAL leaves it unbound
            g.add(uri("a%d" % i), uri("born"), uri("c%d" % (i % 2)))
        g.add(uri("a%d" % i), uri("label"), Literal("Actor %d" % i))
    ds.add_graph(g)
    return ds


def small_engines(small_dataset):
    return {
        "streaming": Engine(small_dataset, streaming=True),
        "materialized": Engine(small_dataset, streaming=False),
        "reference": Engine(small_dataset, columnar=False),
    }


def row_bag(result):
    """Order-insensitive fingerprint with columns keyed by name."""
    order = sorted(range(len(result.variables)),
                   key=lambda i: result.variables[i])
    return sorted(tuple(repr(row[i]) for i in order) for row in result.rows)


GROUPED_CORPUS = [
    # Index-backed COUNT shapes (single pattern, constant predicate)
    "SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a } GROUP BY ?a",
    "SELECT ?a (COUNT(DISTINCT ?m) AS ?n) WHERE { ?m x:starring ?a } GROUP BY ?a",
    "SELECT ?m (COUNT(?a) AS ?n) WHERE { ?m x:starring ?a } GROUP BY ?m",
    "SELECT ?a (COUNT(*) AS ?n) WHERE { ?m x:starring ?a } GROUP BY ?a",
    """SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
        GROUP BY ?a HAVING (COUNT(?m) >= 3)""",
    # General streaming hash aggregation over multi-pattern BGPs
    """SELECT ?a (COUNT(?m) AS ?n) (MIN(?y) AS ?lo) (MAX(?y) AS ?hi)
        WHERE { ?m x:starring ?a . ?m x:year ?y } GROUP BY ?a""",
    """SELECT ?a (SUM(?y) AS ?s) (AVG(?y) AS ?mean)
        WHERE { ?m x:starring ?a . ?m x:year ?y } GROUP BY ?a""",
    """SELECT ?a (SAMPLE(?y) AS ?one)
        WHERE { ?m x:starring ?a . ?m x:year ?y } GROUP BY ?a""",
    """SELECT ?a (GROUP_CONCAT(?l) AS ?labels)
        WHERE { ?m x:starring ?a . ?a x:label ?l } GROUP BY ?a""",
    # DISTINCT value aggregates
    """SELECT ?c (COUNT(DISTINCT ?a) AS ?n) (SUM(?y) AS ?s)
        WHERE { ?m x:starring ?a . ?a x:born ?c . ?m x:year ?y }
        GROUP BY ?c""",
    """SELECT ?a (SUM(DISTINCT ?y) AS ?s)
        WHERE { ?m x:starring ?a . ?m x:year ?y } GROUP BY ?a""",
    # Multi-variable grouping keys
    """SELECT ?a ?c (COUNT(?m) AS ?n)
        WHERE { ?m x:starring ?a . ?a x:born ?c } GROUP BY ?a ?c""",
    # Group over OPTIONAL: unbound key and unbound aggregated column
    """SELECT ?c (COUNT(?a) AS ?n)
        WHERE { ?m x:starring ?a OPTIONAL { ?a x:born ?c } } GROUP BY ?c""",
    """SELECT ?a (COUNT(?c) AS ?n) (SAMPLE(?c) AS ?any)
        WHERE { ?m x:starring ?a OPTIONAL { ?a x:born ?c } } GROUP BY ?a""",
    # Complex aggregate expressions (per-row evaluation path)
    """SELECT ?a (SUM(?y - 1990) AS ?s)
        WHERE { ?m x:starring ?a . ?m x:year ?y } GROUP BY ?a""",
    # Implicit single group
    "SELECT (COUNT(*) AS ?n) WHERE { ?m x:starring ?a }",
    "SELECT (COUNT(*) AS ?n) (SUM(?y) AS ?s) WHERE { ?m x:nope ?y }",
    "SELECT (AVG(?y) AS ?mean) WHERE { ?m x:nope ?y }",
    # Poisoned numeric aggregates (non-numeric values -> unbound)
    "SELECT ?m (SUM(?t) AS ?s) WHERE { ?m x:tag ?t } GROUP BY ?m",
    "SELECT (AVG(?t) AS ?mean) WHERE { ?m x:tag ?t }",
    # Aggregation over a subquery (projection narrowing applies)
    """SELECT ?a (COUNT(?m) AS ?n) WHERE {
        { SELECT ?m ?a ?y WHERE { ?m x:starring ?a . ?m x:year ?y } }
    } GROUP BY ?a""",
    # Bounded grouped query: TopK over Group
    """SELECT ?a (COUNT(?m) AS ?n) WHERE { ?m x:starring ?a }
        GROUP BY ?a ORDER BY DESC(?n) ?a LIMIT 3""",
]


@pytest.mark.parametrize("query", GROUPED_CORPUS,
                         ids=range(len(GROUPED_CORPUS)))
def test_grouped_corpus_identical_across_planes(small_dataset, query):
    engines = small_engines(small_dataset)
    results = {plane: engine.query(PFX + query,
                                   default_graph_uri="http://g")
               for plane, engine in engines.items()}
    want = row_bag(results["reference"])
    assert row_bag(results["materialized"]) == want
    assert row_bag(results["streaming"]) == want


class TestCaseStudyPlanes:
    """The paper's case-study pipelines (which all aggregate) under
    streaming='auto': aggregate plans route through the new path and
    still match the other planes."""

    @pytest.fixture(params=[cs.key for cs in CASE_STUDIES])
    def case_study(self, request):
        return get_case_study(request.param)

    def test_auto_routing_matches_reference(self, dataset, case_study):
        auto = Engine(dataset)  # streaming='auto'
        reference = Engine(dataset, columnar=False)
        frame = case_study.frame()
        got = auto.query_model(frame.query_model())
        want = reference.query(frame.to_sparql())
        assert row_bag(got) == row_bag(want)


class TestStreamingRouting:
    def test_aggregate_plan_is_annotated_streaming(self, engines):
        plan = engines["streaming"].plan(COUNT_FILMS,
                                         default_graph_uri=DBPEDIA_URI)
        assert plan.streaming

    def test_auto_engine_routes_group_through_streaming(self, dataset):
        engine = Engine(dataset)  # streaming='auto'
        engine.query(COUNT_FILMS, default_graph_uri=DBPEDIA_URI)
        stats = engine.last_stats
        assert engine.last_plan.streaming
        assert stats.groups_built > 0
        assert stats.rows_pulled > 0  # went through the batch executor

    def test_materialized_engine_stays_materialized(self, dataset):
        engine = Engine(dataset, streaming=False)
        engine.query(COUNT_FILMS, default_graph_uri=DBPEDIA_URI)
        assert engine.last_stats.rows_pulled == 0
        assert engine.last_stats.groups_built > 0


class TestIndexBackedCount:
    def test_count_hooks(self):
        d = TermDictionary()
        g = Graph("http://h", dictionary=d)
        p = uri("p")
        for i in range(3):
            g.add(uri("s"), p, uri("o%d" % i))
        g.add(uri("s2"), p, uri("o0"))
        pid = d.lookup(p)
        assert g.count_objects_for(d.lookup(uri("s")), pid) == 3
        assert g.count_objects_for(d.lookup(uri("s2")), pid) == 1
        assert g.count_subjects_for(pid, d.lookup(uri("o0"))) == 2
        assert g.count_objects_for(999999, pid) == 0
        assert g.count_subjects_for(999999, 0) == 0

    def test_union_count_hooks_dedup(self):
        d = TermDictionary()
        ds = Dataset()
        g1 = Graph("http://u1", dictionary=d)
        g2 = Graph("http://u2", dictionary=d)
        p = uri("p")
        g1.add(uri("s"), p, uri("o1"))
        g1.add(uri("s"), p, uri("o2"))
        g2.add(uri("s"), p, uri("o2"))  # overlaps g1
        g2.add(uri("s"), p, uri("o3"))
        ds.add_graph(g1)
        ds.add_graph(g2)
        union = ds.union_view()
        sid, pid = d.lookup(uri("s")), d.lookup(p)
        assert union.count_objects_for(sid, pid) == 3
        assert union.count_subjects_for(pid, d.lookup(uri("o2"))) == 1

    def test_fast_path_touches_no_rows(self, dataset):
        engine = Engine(dataset, streaming=True)
        result = engine.query(COUNT_FILMS, default_graph_uri=DBPEDIA_URI)
        stats = engine.last_stats
        groups = len(result)
        assert groups > 10
        assert stats.pattern_matches == 0      # no index-nested-loop rows
        assert stats.accumulator_rows == 0     # nothing folded
        assert stats.groups_built == groups
        # Only the finished group rows cross stream boundaries
        # (Group output + root projection).
        assert stats.rows_pulled <= 2 * groups

    def test_fast_path_and_general_path_agree_exactly(self, dataset):
        # The same query routed through the fast path (single pattern) and
        # the general hash path (forced by an extra pattern that matches
        # everything the first one does) must name identical counts.
        fast_engine = Engine(dataset, streaming=True)
        fast = fast_engine.query(COUNT_FILMS, default_graph_uri=DBPEDIA_URI)
        assert fast_engine.last_stats.accumulator_rows == 0
        general_q = PFX + """
        SELECT ?actor (COUNT(DISTINCT ?film) AS ?n) WHERE {
            ?film dbpp:starring ?actor .
            ?film rdf:type ?t .
        } GROUP BY ?actor"""
        general_engine = Engine(dataset, streaming=True)
        general = general_engine.query(general_q,
                                       default_graph_uri=DBPEDIA_URI)
        assert general_engine.last_stats.accumulator_rows > 0
        fast_counts = {repr(a): n.value for a, n in fast.rows}
        general_counts = {repr(a): n.value for a, n in general.rows}
        assert fast_counts == general_counts

    def test_fast_path_disabled_for_repeated_variable(self, small_dataset):
        # ?x p ?x must not take the index shortcut.
        engines = small_engines(small_dataset)
        query = PFX + """SELECT ?x (COUNT(*) AS ?n)
            WHERE { ?x x:starring ?x } GROUP BY ?x"""
        bags = {plane: row_bag(e.query(query, default_graph_uri="http://g"))
                for plane, e in engines.items()}
        assert bags["streaming"] == bags["reference"]
        assert bags["materialized"] == bags["reference"]


class TestBoundedBatches:
    def test_high_fanout_group_input_stays_chunked(self):
        # A BGP whose first pattern is tiny but whose join fan-out is huge
        # must still reach the streaming Group in capped batches — the
        # exhaustive breadth-first producer re-chunks at every level, so
        # no single batch materializes the pre-aggregation table.
        from repro.sparql.evaluator import STREAM_BATCH_ROWS

        d = TermDictionary()
        g = Graph("http://fan", dictionary=d)
        for i in range(4):  # 4 seed subjects ...
            s = uri("hub%d" % i)
            g.add(s, uri("kind"), uri("Hub"))
            for j in range(1500):  # ... each fanning out 1500x
                g.add(s, uri("link"), uri("t%d_%d" % (i, j)))
        engine = Engine(g, streaming=True)
        result = engine.query(PFX + """
            SELECT ?h (COUNT(?t) AS ?n) WHERE {
                ?h x:kind x:Hub . ?h x:link ?t .
            } GROUP BY ?h""")
        stats = engine.last_stats
        assert sorted(n.value for _, n in result.rows) == [1500] * 4
        assert stats.accumulator_rows == 6000  # general hash path ran
        assert stats.peak_batch_rows <= STREAM_BATCH_ROWS


class TestCountDistinctStar:
    def test_counts_distinct_solutions_on_all_planes(self):
        # s1,s2 -> o1 and s3 -> o2: the subquery projects ?o, so the
        # outer pattern sees 3 rows but only 2 distinct solutions.
        d = TermDictionary()
        g = Graph("http://cds", dictionary=d)
        g.add(uri("s1"), uri("p"), uri("o1"))
        g.add(uri("s2"), uri("p"), uri("o1"))
        g.add(uri("s3"), uri("p"), uri("o2"))
        query = PFX + """SELECT (COUNT(DISTINCT *) AS ?n) WHERE {
            { SELECT ?o WHERE { ?s x:p ?o } } }"""
        plain = PFX + """SELECT (COUNT(*) AS ?n) WHERE {
            { SELECT ?o WHERE { ?s x:p ?o } } }"""
        for engine in (Engine(g, streaming=True),
                       Engine(g, streaming=False),
                       Engine(g, columnar=False)):
            assert engine.query(query).rows[0][0].value == 2
            assert engine.query(plain).rows[0][0].value == 3


class TestFastPathSafetyValves:
    def test_max_rows_trips_mid_sweep(self):
        d = TermDictionary()
        g = Graph("http://valve", dictionary=d)
        for i in range(200):  # 200 groups, budget of 50
            g.add(uri("s%d" % i), uri("p"), uri("o%d" % i))
        from repro.sparql.evaluator import EvaluationError

        engine = Engine(g, streaming=True, max_intermediate_rows=50)
        with pytest.raises(EvaluationError, match="max_rows"):
            engine.query(PFX + """SELECT ?s (COUNT(?o) AS ?n)
                WHERE { ?s x:p ?o } GROUP BY ?s""")


class TestTopKGroups:
    QUERY = COUNT_FILMS + " ORDER BY DESC(?n) ?actor LIMIT 10"

    def test_bounded_grouped_query_identical(self, engines):
        streamed = engines["streaming"].query(
            self.QUERY, default_graph_uri=DBPEDIA_URI)
        materialized = engines["materialized"].query(
            self.QUERY, default_graph_uri=DBPEDIA_URI)
        assert streamed.rows == materialized.rows
        assert len(streamed) == 10
        # The heap keeps the true top groups: counts are non-increasing.
        counts = [row[1].value for row in streamed.rows]
        assert counts == sorted(counts, reverse=True)

    def test_plan_fuses_into_topk_over_group(self, engines):
        from repro.sparql import algebra as alg

        plan = engines["streaming"].plan(self.QUERY,
                                         default_graph_uri=DBPEDIA_URI)
        assert plan.streaming
        node = plan.query.pattern
        while not isinstance(node, alg.TopK):
            node = node.pattern
        assert isinstance(node.pattern, alg.Group)


class TestAggregatePushdownPass:
    def test_pre_group_projection_narrowed(self):
        from repro.rdf.terms import Variable
        from repro.sparql import algebra as alg
        from repro.sparql.expressions import VarExpr
        from repro.sparql.plan import aggregate_pushdown

        bgp = alg.BGP([(Variable("m"), uri("starring"), Variable("a")),
                       (Variable("m"), uri("year"), Variable("y"))])
        wide = alg.Project(bgp, ["m", "a", "y"])
        group = alg.Group(wide, ["a"],
                          [alg.Aggregate("count", VarExpr("m"), "n")])
        node, changes = aggregate_pushdown(alg.Project(group, ["a", "n"]))
        assert changes == 1
        narrowed = node.pattern.pattern
        assert isinstance(narrowed, alg.Project)
        assert narrowed.variables == ["m", "a"]  # ?y pruned, order kept

    def test_noop_when_all_columns_needed(self):
        from repro.rdf.terms import Variable
        from repro.sparql import algebra as alg
        from repro.sparql.expressions import VarExpr
        from repro.sparql.plan import aggregate_pushdown

        bgp = alg.BGP([(Variable("m"), uri("starring"), Variable("a"))])
        group = alg.Group(alg.Project(bgp, ["m", "a"]), ["a"],
                          [alg.Aggregate("count", VarExpr("m"), "n")])
        _, changes = aggregate_pushdown(group)
        assert changes == 0

    def test_narrowing_preserves_results(self, small_dataset):
        engines = small_engines(small_dataset)
        query = PFX + """SELECT ?a (COUNT(?m) AS ?n) WHERE {
            { SELECT ?m ?a ?y ?t WHERE {
                ?m x:starring ?a . ?m x:year ?y . ?m x:type ?t } }
        } GROUP BY ?a"""
        bags = {plane: row_bag(e.query(query, default_graph_uri="http://g"))
                for plane, e in engines.items()}
        assert bags["streaming"] == bags["reference"]
        assert bags["materialized"] == bags["reference"]


class TestGroupConcatSeparator:
    """Regression: GROUP_CONCAT's SEPARATOR modifier (previously a parse
    error; the default separator was untested)."""

    @pytest.fixture()
    def label_engines(self):
        d = TermDictionary()
        g = Graph("http://gc", dictionary=d)
        s = uri("s")
        for name in ("alpha", "beta", "gamma"):
            g.add(s, uri("tag"), Literal(name))
        g.add(uri("s2"), uri("tag"), Literal("solo"))
        return {
            "streaming": Engine(g, streaming=True),
            "materialized": Engine(g, streaming=False),
            "reference": Engine(g, columnar=False),
        }

    def planes(self, label_engines, query):
        out = {}
        for plane, engine in label_engines.items():
            result = engine.query(PFX + query)
            out[plane] = {str(row[0]): row[1] for row in result.rows}
        assert out["streaming"] == out["materialized"] == out["reference"]
        return out["streaming"]

    def test_default_separator_is_single_space(self, label_engines):
        rows = self.planes(label_engines, """
            SELECT ?s (GROUP_CONCAT(?t) AS ?c)
            WHERE { ?s x:tag ?t } GROUP BY ?s""")
        parts = sorted(rows["http://x/s"].lexical.split(" "))
        assert parts == ["alpha", "beta", "gamma"]
        assert rows["http://x/s2"].lexical == "solo"

    def test_custom_separator(self, label_engines):
        rows = self.planes(label_engines, """
            SELECT ?s (GROUP_CONCAT(?t ; SEPARATOR=", ") AS ?c)
            WHERE { ?s x:tag ?t } GROUP BY ?s""")
        parts = sorted(rows["http://x/s"].lexical.split(", "))
        assert parts == ["alpha", "beta", "gamma"]
        assert ", " in rows["http://x/s"].lexical

    def test_distinct_with_separator(self, label_engines):
        rows = self.planes(label_engines, """
            SELECT ?s (GROUP_CONCAT(DISTINCT ?t ; SEPARATOR="|") AS ?c)
            WHERE { ?s x:tag ?t } GROUP BY ?s""")
        assert sorted(rows["http://x/s"].lexical.split("|")) == \
            ["alpha", "beta", "gamma"]

    def test_separator_round_trips_through_algebra(self):
        from repro.sparql.parser import parse

        query = parse(PFX + """
            SELECT ?s (GROUP_CONCAT(?t ; SEPARATOR="; ") AS ?c)
            WHERE { ?s x:tag ?t } GROUP BY ?s""")
        node = query.pattern
        while not hasattr(node, "aggregates"):
            node = node.pattern
        aggregate = node.aggregates[0]
        assert aggregate.separator == "; "
        assert 'SEPARATOR="; "' in aggregate.sparql()

    @pytest.mark.parametrize("separator,spelling", [
        ("\n\t", r"\n\t"),
        ("\\n", r"\\n"),      # literal backslash then 'n' — not a newline
        ("a\\tb", r"a\\tb"),  # literal backslash mid-string
        ('"|"', r'\"|\"'),
    ])
    def test_separator_escapes_round_trip(self, separator, spelling):
        from repro.sparql.parser import parse

        def first_aggregate(query):
            node = query.pattern
            while not hasattr(node, "aggregates"):
                node = node.pattern
            return node.aggregates[0]

        query = parse(PFX + """
            SELECT ?s (GROUP_CONCAT(?t ; SEPARATOR="%s") AS ?c)
            WHERE { ?s x:tag ?t } GROUP BY ?s""" % spelling)
        aggregate = first_aggregate(query)
        assert aggregate.separator == separator
        # The rendered form re-escapes, so render -> parse is exact (a
        # raw newline inside the quotes would not even tokenize).
        rendered = aggregate.sparql()
        assert "\n" not in rendered
        reparsed = parse(PFX + """
            SELECT %s WHERE { ?s x:tag ?t } GROUP BY ?s""" % rendered)
        assert first_aggregate(reparsed).separator == separator

    def test_separator_rejected_outside_group_concat(self):
        from repro.sparql.parser import ParseError, parse

        with pytest.raises(ParseError):
            parse(PFX + """SELECT (COUNT(?t ; SEPARATOR=",") AS ?c)
                WHERE { ?s x:tag ?t }""")


class TestNumericAggregateTyping:
    """Regression: AVG/SUM datatype promotion over mixed int/decimal
    columns (previously AVG always produced xsd:double)."""

    @pytest.fixture()
    def score_engines(self):
        d = TermDictionary()
        g = Graph("http://num", dictionary=d)
        g.add(uri("intonly"), uri("v"), Literal(2))
        g.add(uri("intonly"), uri("v"), Literal(4))
        g.add(uri("mixed"), uri("v"), Literal(1))
        g.add(uri("mixed"), uri("v"), Literal("2.5", XSD_DECIMAL))
        g.add(uri("double"), uri("v"), Literal(1))
        g.add(uri("double"), uri("v"), Literal(3.0))
        return {
            "streaming": Engine(g, streaming=True),
            "materialized": Engine(g, streaming=False),
            "reference": Engine(g, columnar=False),
        }

    def agg(self, score_engines, call):
        query = PFX + """SELECT ?s (%s AS ?r)
            WHERE { ?s x:v ?n } GROUP BY ?s""" % call
        out = {}
        for plane, engine in score_engines.items():
            result = engine.query(query)
            out[plane] = {str(row[0]).rsplit("/", 1)[1]: row[1]
                          for row in result.rows}
        assert out["streaming"] == out["materialized"] == out["reference"]
        return out["streaming"]

    def test_avg_int_and_mixed_are_decimal(self, score_engines):
        means = self.agg(score_engines, "AVG(?n)")
        assert means["intonly"].datatype == XSD_DECIMAL
        assert means["intonly"].value == 3
        assert means["mixed"].datatype == XSD_DECIMAL
        assert means["mixed"].value == 1.75
        # A double operand still promotes all the way to double.
        assert means["double"].datatype == XSD_DOUBLE
        assert means["double"].value == 2.0

    def test_sum_promotion(self, score_engines):
        sums = self.agg(score_engines, "SUM(?n)")
        assert sums["intonly"].datatype == XSD_INTEGER
        assert sums["intonly"].value == 6
        assert sums["mixed"].datatype == XSD_DECIMAL
        assert sums["mixed"].value == 3.5
        assert sums["double"].datatype == XSD_DOUBLE
        assert sums["double"].value == 4.0

    def test_tiny_decimal_avg_has_plain_lexical(self):
        # repr(1e-05) is exponent notation, which xsd:decimal forbids:
        # the promoted lexical must be expanded to plain form.
        d = TermDictionary()
        g = Graph("http://tiny", dictionary=d)
        g.add(uri("s"), uri("v"), Literal("0.00001", XSD_DECIMAL))
        g.add(uri("s"), uri("v"), Literal("0.00003", XSD_DECIMAL))
        results = {}
        for plane, engine in (("streaming", Engine(g, streaming=True)),
                              ("materialized", Engine(g, streaming=False)),
                              ("reference", Engine(g, columnar=False))):
            row = engine.query(
                PFX + "SELECT (AVG(?n) AS ?m) WHERE { ?s x:v ?n }").rows[0]
            results[plane] = row[0]
        assert results["streaming"] == results["materialized"] \
            == results["reference"]
        mean = results["streaming"]
        assert mean.datatype == XSD_DECIMAL
        assert mean.value == 2e-05
        assert "e" not in mean.lexical.lower()

    def test_avg_runtime_identical_on_synthetic_graph(self, engines):
        results = {plane: engine.query(AVG_RUNTIME,
                                       default_graph_uri=DBPEDIA_URI)
                   for plane, engine in engines.items()}
        want = row_bag(results["reference"])
        assert row_bag(results["materialized"]) == want
        assert row_bag(results["streaming"]) == want
        for row in results["streaming"].rows:
            assert row[1].datatype == XSD_DECIMAL  # ints averaged
