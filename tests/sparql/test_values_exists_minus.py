"""Tests for VALUES, MINUS, and FILTER (NOT) EXISTS support."""

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.sparql import Engine


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def engine():
    g = Graph("http://g")
    g.add(uri("m1"), uri("starring"), uri("a1"))
    g.add(uri("m2"), uri("starring"), uri("a2"))
    g.add(uri("m3"), uri("starring"), uri("a3"))
    g.add(uri("a1"), uri("born"), uri("usa"))
    g.add(uri("a2"), uri("born"), uri("france"))
    g.add(uri("m1"), uri("year"), Literal(2000))
    g.add(uri("m2"), uri("year"), Literal(2010))
    return Engine(g)


PFX = "PREFIX x: <http://x/>\n"


def rows(engine, query):
    return set(engine.query(query).to_dataframe().to_records())


class TestValues:
    def test_single_variable_values(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m ?a WHERE {
                VALUES ?a { x:a1 x:a3 }
                ?m x:starring ?a .
            }""")
        assert result == {("http://x/m1", "http://x/a1"),
                          ("http://x/m3", "http://x/a3")}

    def test_multi_variable_values(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m ?y WHERE {
                ?m x:year ?y .
                VALUES (?m ?y) { (x:m1 2000) (x:m2 1999) }
            }""")
        assert result == {("http://x/m1", 2000)}

    def test_undef_is_wildcard(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m ?y WHERE {
                ?m x:year ?y .
                VALUES (?m ?y) { (UNDEF 2010) }
            }""")
        assert result == {("http://x/m2", 2010)}

    def test_values_alone(self, engine):
        result = rows(engine, PFX + """
            SELECT ?v WHERE { VALUES ?v { 1 2 3 } }""")
        assert result == {(1,), (2,), (3,)}

    def test_values_literal_rows(self, engine):
        result = rows(engine, PFX + """
            SELECT ?v WHERE { VALUES ?v { "a" "b" } }""")
        assert result == {("a",), ("b",)}

    def test_empty_values_yields_nothing(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m WHERE { ?m x:starring ?a VALUES ?a { } }""")
        assert result == set()

    def test_arity_mismatch_rejected(self, engine):
        from repro.sparql import ParseError
        with pytest.raises(ParseError):
            engine.query(PFX + """
                SELECT * WHERE { VALUES (?a ?b) { (1) } }""")


class TestMinus:
    def test_minus_removes_matching(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a WHERE {
                ?m x:starring ?a
                MINUS { ?a x:born x:usa }
            }""")
        assert result == {("http://x/a2",), ("http://x/a3",)}

    def test_minus_with_no_shared_vars_keeps_all(self, engine):
        # Disjoint domains: nothing is removed (SPARQL MINUS semantics).
        result = rows(engine, PFX + """
            SELECT ?m WHERE {
                ?m x:year ?y
                MINUS { ?z x:born x:usa }
            }""")
        assert len(result) == 2

    def test_minus_of_everything(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a WHERE {
                ?m x:starring ?a
                MINUS { ?m x:starring ?a }
            }""")
        assert result == set()


class TestExists:
    def test_filter_exists(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a WHERE {
                ?m x:starring ?a
                FILTER EXISTS { ?a x:born ?c }
            }""")
        assert result == {("http://x/a1",), ("http://x/a2",)}

    def test_filter_not_exists(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a WHERE {
                ?m x:starring ?a
                FILTER NOT EXISTS { ?a x:born ?c }
            }""")
        assert result == {("http://x/a3",)}

    def test_exists_with_concrete_term(self, engine):
        result = rows(engine, PFX + """
            SELECT ?a WHERE {
                ?m x:starring ?a
                FILTER EXISTS { ?a x:born x:usa }
            }""")
        assert result == {("http://x/a1",)}

    def test_exists_combines_with_plain_filter(self, engine):
        result = rows(engine, PFX + """
            SELECT ?m WHERE {
                ?m x:starring ?a .
                ?m x:year ?y
                FILTER ( ?y >= 2005 )
                FILTER EXISTS { ?a x:born ?c }
            }""")
        assert result == {("http://x/m2",)}

    def test_not_exists_equals_minus_here(self, engine):
        a = rows(engine, PFX + """
            SELECT ?a WHERE { ?m x:starring ?a
                FILTER NOT EXISTS { ?a x:born ?c } }""")
        b = rows(engine, PFX + """
            SELECT ?a WHERE { ?m x:starring ?a
                MINUS { ?a x:born ?c } }""")
        assert a == b
