"""Unit tests for SPARQL expression evaluation semantics."""

import pytest

from repro.rdf.terms import BlankNode, Literal, URIRef, XSD_DATETIME
from repro.sparql.expressions import (AndExpr, ArithmeticExpr, CompareExpr,
                                      ConstExpr, ExpressionError,
                                      FunctionExpr, InExpr, NotExpr, OrExpr,
                                      UnaryMinusExpr, VarExpr, ebv)


def lit(value, **kwargs):
    return Literal(value, **kwargs)


def const(value, **kwargs):
    return ConstExpr(lit(value, **kwargs))


class TestVarAndConst:
    def test_var_bound(self):
        assert VarExpr("x").evaluate({"x": lit(1)}) == lit(1)

    def test_var_unbound_errors(self):
        with pytest.raises(ExpressionError):
            VarExpr("x").evaluate({})

    def test_const(self):
        assert const(5).evaluate({}) == lit(5)


class TestComparisons:
    @pytest.mark.parametrize("op,l,r,expected", [
        ("=", 5, 5, True), ("=", 5, 6, False),
        ("!=", 5, 6, True), ("<", 5, 6, True),
        ("<=", 5, 5, True), (">", 7, 6, True), (">=", 5, 6, False),
    ])
    def test_numeric(self, op, l, r, expected):
        result = CompareExpr(op, const(l), const(r)).evaluate({})
        assert ebv(result) is expected

    def test_numeric_type_promotion(self):
        assert ebv(CompareExpr("=", const(5), const(5.0)).evaluate({}))

    def test_string_ordering(self):
        assert ebv(CompareExpr("<", const("apple"), const("banana"))
                   .evaluate({}))

    def test_uri_equality_only(self):
        a, b = ConstExpr(URIRef("http://a")), ConstExpr(URIRef("http://b"))
        assert not ebv(CompareExpr("=", a, b).evaluate({}))
        assert ebv(CompareExpr("!=", a, b).evaluate({}))
        with pytest.raises(ExpressionError):
            CompareExpr("<", a, b).evaluate({})

    def test_blank_node_equality_only(self):
        a = ConstExpr(BlankNode("x"))
        assert ebv(CompareExpr("=", a, ConstExpr(BlankNode("x"))).evaluate({}))
        with pytest.raises(ExpressionError):
            CompareExpr(">", a, a).evaluate({})

    def test_mixed_string_number_lt_errors(self):
        with pytest.raises(ExpressionError):
            CompareExpr("<", const("a"), const(1)).evaluate({})

    def test_mixed_string_number_neq_true(self):
        assert ebv(CompareExpr("!=", const("a"), const(1)).evaluate({}))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            CompareExpr("~", const(1), const(2))


class TestLogical:
    T, F = const(True), const(False)
    ERR = VarExpr("unbound")

    def test_and_truth_table(self):
        assert ebv(AndExpr(self.T, self.T).evaluate({}))
        assert not ebv(AndExpr(self.T, self.F).evaluate({}))

    def test_and_false_absorbs_error(self):
        assert not ebv(AndExpr(self.F, self.ERR).evaluate({}))
        assert not ebv(AndExpr(self.ERR, self.F).evaluate({}))

    def test_and_true_with_error_errors(self):
        with pytest.raises(ExpressionError):
            AndExpr(self.T, self.ERR).evaluate({})

    def test_or_true_absorbs_error(self):
        assert ebv(OrExpr(self.T, self.ERR).evaluate({}))
        assert ebv(OrExpr(self.ERR, self.T).evaluate({}))

    def test_or_false_with_error_errors(self):
        with pytest.raises(ExpressionError):
            OrExpr(self.F, self.ERR).evaluate({})

    def test_not(self):
        assert not ebv(NotExpr(self.T).evaluate({}))
        assert ebv(NotExpr(self.F).evaluate({}))


class TestInExpr:
    def test_member(self):
        expr = InExpr(VarExpr("x"), [const(1), const(2)])
        assert ebv(expr.evaluate({"x": lit(2)}))
        assert not ebv(expr.evaluate({"x": lit(3)}))

    def test_negated(self):
        expr = InExpr(VarExpr("x"), [const(1)], negated=True)
        assert ebv(expr.evaluate({"x": lit(3)}))

    def test_uri_membership(self):
        expr = InExpr(VarExpr("x"), [ConstExpr(URIRef("http://a"))])
        assert ebv(expr.evaluate({"x": URIRef("http://a")}))

    def test_error_option_skipped(self):
        expr = InExpr(VarExpr("x"), [VarExpr("unbound"), const(5)])
        assert ebv(expr.evaluate({"x": lit(5)}))


class TestArithmetic:
    @pytest.mark.parametrize("op,expected", [
        ("+", 8), ("-", 4), ("*", 12), ("/", 3),
    ])
    def test_ops(self, op, expected):
        result = ArithmeticExpr(op, const(6), const(2)).evaluate({})
        assert result.value == expected

    def test_division_by_zero_errors(self):
        with pytest.raises(ExpressionError):
            ArithmeticExpr("/", const(1), const(0)).evaluate({})

    def test_non_numeric_errors(self):
        with pytest.raises(ExpressionError):
            ArithmeticExpr("+", const("a"), const(1)).evaluate({})

    def test_unary_minus(self):
        assert UnaryMinusExpr(const(4)).evaluate({}).value == -4


class TestFunctions:
    def test_str_of_uri(self):
        result = FunctionExpr("str", [ConstExpr(URIRef("http://a"))])
        assert result.evaluate({}).lexical == "http://a"

    def test_lang_and_datatype(self):
        tagged = ConstExpr(lit("chat", language="fr"))
        assert FunctionExpr("lang", [tagged]).evaluate({}).lexical == "fr"
        typed = const(5)
        assert str(FunctionExpr("datatype", [typed]).evaluate({})).endswith(
            "integer")

    def test_bound(self):
        expr = FunctionExpr("bound", [VarExpr("x")])
        assert ebv(expr.evaluate({"x": lit(1)}))
        assert not ebv(expr.evaluate({}))

    def test_type_checks(self):
        uri = ConstExpr(URIRef("http://a"))
        literal = const("x")
        blank = ConstExpr(BlankNode("b"))
        assert ebv(FunctionExpr("isiri", [uri]).evaluate({}))
        assert ebv(FunctionExpr("isuri", [uri]).evaluate({}))
        assert not ebv(FunctionExpr("isiri", [literal]).evaluate({}))
        assert ebv(FunctionExpr("isliteral", [literal]).evaluate({}))
        assert ebv(FunctionExpr("isblank", [blank]).evaluate({}))
        assert ebv(FunctionExpr("isnumeric", [const(3)]).evaluate({}))

    def test_regex(self):
        expr = FunctionExpr("regex", [VarExpr("x"), const("^ab")])
        assert ebv(expr.evaluate({"x": lit("abc")}))
        assert not ebv(expr.evaluate({"x": lit("zabc")}))

    def test_regex_case_insensitive_flag(self):
        expr = FunctionExpr("regex", [VarExpr("x"), const("ABC"), const("i")])
        assert ebv(expr.evaluate({"x": lit("xabcx")}))

    def test_regex_requires_literals(self):
        expr = FunctionExpr("regex", [ConstExpr(URIRef("http://a")),
                                      const("a")])
        with pytest.raises(ExpressionError):
            expr.evaluate({})

    def test_bad_regex_errors(self):
        expr = FunctionExpr("regex", [const("abc"), const("(")])
        with pytest.raises(ExpressionError):
            expr.evaluate({})

    def test_string_functions(self):
        assert ebv(FunctionExpr("contains", [const("abc"), const("b")])
                   .evaluate({}))
        assert ebv(FunctionExpr("strstarts", [const("abc"), const("a")])
                   .evaluate({}))
        assert ebv(FunctionExpr("strends", [const("abc"), const("c")])
                   .evaluate({}))
        assert FunctionExpr("ucase", [const("ab")]).evaluate({}).lexical == "AB"
        assert FunctionExpr("lcase", [const("AB")]).evaluate({}).lexical == "ab"
        assert FunctionExpr("strlen", [const("abcd")]).evaluate({}).value == 4

    def test_date_parts(self):
        date = const("2015-03-07", datatype=XSD_DATETIME)
        assert FunctionExpr("year", [date]).evaluate({}).value == 2015
        assert FunctionExpr("month", [date]).evaluate({}).value == 3
        assert FunctionExpr("day", [date]).evaluate({}).value == 7

    def test_year_of_garbage_errors(self):
        with pytest.raises(ExpressionError):
            FunctionExpr("year", [const("garbage")]).evaluate({})

    def test_numeric_functions(self):
        assert FunctionExpr("abs", [const(-3)]).evaluate({}).value == 3
        assert FunctionExpr("ceil", [const(2.1)]).evaluate({}).value == 3
        assert FunctionExpr("floor", [const(2.9)]).evaluate({}).value == 2
        assert FunctionExpr("round", [const(2.5)]).evaluate({}).value == 2

    def test_casts(self):
        assert FunctionExpr("xsd:integer", [const("42")]).evaluate({}).value == 42
        assert FunctionExpr("xsd:double", [const("2.5")]).evaluate({}).value == 2.5
        result = FunctionExpr("xsd:datetime", [const("2010-01-02")]).evaluate({})
        assert result.datatype == XSD_DATETIME

    def test_bad_cast_errors(self):
        with pytest.raises(ExpressionError):
            FunctionExpr("xsd:integer", [const("abc")]).evaluate({})

    def test_unknown_function_errors(self):
        with pytest.raises(ExpressionError):
            FunctionExpr("frobnicate", [const(1)]).evaluate({})


class TestEbv:
    def test_boolean(self):
        assert ebv(lit(True)) is True
        assert ebv(lit(False)) is False

    def test_numeric(self):
        assert ebv(lit(1)) is True
        assert ebv(lit(0)) is False
        assert ebv(lit(0.0)) is False

    def test_string(self):
        assert ebv(lit("x")) is True
        assert ebv(lit("")) is False

    def test_uri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            ebv(URIRef("http://a"))


class TestRendering:
    def test_sparql_round_trippable_text(self):
        expr = AndExpr(CompareExpr(">=", VarExpr("n"), const(5)),
                       InExpr(VarExpr("c"), [const("a"), const("b")]))
        text = expr.sparql()
        assert "?n >= 5" in text
        assert "IN" in text

    def test_variables_collected(self):
        expr = OrExpr(CompareExpr("=", VarExpr("a"), VarExpr("b")),
                      FunctionExpr("bound", [VarExpr("c")]))
        assert set(expr.variables()) == {"a", "b", "c"}
