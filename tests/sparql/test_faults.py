"""The deterministic fault-injection layer (chaos plumbing)."""

import json

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.sparql import (Endpoint, Engine, FaultInjector, FaultyEndpoint,
                          LatencyFaults, MidStreamTimeouts, PayloadCorruption,
                          TransientError, TransientFaults)


def uri(name):
    return URIRef("http://x/" + name)


QUERY = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v }"


@pytest.fixture
def endpoint():
    g = Graph("http://g")
    for i in range(25):
        g.add(uri("s%d" % i), uri("p"), Literal(i))
    return Endpoint(Engine(g), max_rows=10)


class TestSchedule:
    @staticmethod
    def schedule(injector, n=50):
        return [injector.should_fire(QUERY, i) for i in range(n)]

    def test_same_seed_same_schedule(self):
        draws_a = self.schedule(FaultInjector(rate=0.5, seed=7))
        draws_b = self.schedule(FaultInjector(rate=0.5, seed=7))
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_different_seeds_differ(self):
        draws_a = self.schedule(FaultInjector(rate=0.5, seed=1))
        draws_b = self.schedule(FaultInjector(rate=0.5, seed=2))
        assert draws_a != draws_b

    def test_kinds_draw_independent_streams(self):
        # Two injector kinds with the same seed must not fire in lockstep.
        transient = self.schedule(TransientFaults(rate=0.5, seed=3))
        corrupt = self.schedule(PayloadCorruption(rate=0.5, seed=3))
        assert transient != corrupt

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)
        assert not any(FaultInjector(rate=0.0).should_fire(QUERY, 0)
                       for _ in range(20))

    def test_max_consecutive_caps_per_page_streaks(self):
        injector = FaultInjector(rate=1.0, max_consecutive=2)
        page = [injector.should_fire(QUERY, 0) for _ in range(5)]
        assert page == [True, True, False, True, True]
        # A different page has its own streak.
        assert injector.should_fire(QUERY, 10)

    def test_success_resets_the_streak(self):
        injector = FaultInjector(rate=1.0, max_consecutive=1)
        assert injector.should_fire(QUERY, 0)
        assert not injector.should_fire(QUERY, 0)   # capped -> page succeeds
        assert injector.should_fire(QUERY, 0)       # streak was reset


class TestTransientFaults:
    def test_raises_before_inner_request(self, endpoint):
        flaky = FaultyEndpoint(endpoint, [TransientFaults(rate=1.0,
                                                          max_consecutive=1)])
        with pytest.raises(TransientError) as excinfo:
            flaky.request(QUERY)
        assert excinfo.value.retryable
        assert endpoint.requests_served == 0
        # The cap guarantees the immediate retry goes through.
        assert len(flaky.request(QUERY).result) == 10
        assert flaky.faults_injected == {"transient": 1}


class TestLatencyFaults:
    def test_delays_without_failing(self, endpoint):
        pauses = []
        slow = FaultyEndpoint(endpoint, [LatencyFaults(delay=0.01,
                                                       sleep=pauses.append)])
        response = slow.request(QUERY)
        assert len(response.result) == 10
        assert len(pauses) == 1
        assert 0.0 <= pauses[0] <= 0.01
        assert slow.faults_injected == {"latency": 1}


class TestPayloadCorruption:
    def test_payload_no_longer_decodes(self, endpoint):
        corrupting = FaultyEndpoint(endpoint,
                                    [PayloadCorruption(rate=1.0)])
        response = corrupting.request(QUERY)
        with pytest.raises((ValueError, KeyError, TypeError)):
            decoded = json.loads(response.payload)
            if len(decoded["results"]["bindings"]) != 10:
                raise ValueError("page silently truncated")

    def test_result_rows_untouched(self, endpoint):
        # Corruption damages the wire payload only; the in-memory result
        # object (used by tests that bypass the wire) stays intact.
        corrupting = FaultyEndpoint(endpoint,
                                    [PayloadCorruption(rate=1.0)])
        assert len(corrupting.request(QUERY).result) == 10


class TestMidStreamTimeouts:
    def test_trips_inner_budget_and_drops_cursor(self, endpoint):
        flaky = FaultyEndpoint(endpoint, [MidStreamTimeouts(
            rate=1.0, max_consecutive=1)])
        # The zero budget trips the endpoint's own deadline valve, so the
        # error takes the exact classified path a production timeout takes.
        with pytest.raises(TransientError):
            flaky.request(QUERY)
        # The inner endpoint's timeout was restored...
        assert endpoint.timeout is None
        assert endpoint.cached_cursors == 0
        # ...and the retry re-executes cleanly from a fresh cursor.
        assert len(flaky.request(QUERY).result) == 10


class TestComposition:
    def test_injectors_compose_and_count_separately(self, endpoint):
        transient = TransientFaults(rate=1.0, max_consecutive=1)
        pauses = []
        latency = LatencyFaults(delay=0.001, sleep=pauses.append)
        flaky = FaultyEndpoint(endpoint, [transient, latency])
        with pytest.raises(TransientError):
            flaky.request(QUERY)
        assert not pauses  # transient fired first; latency never reached
        flaky.request(QUERY)
        assert flaky.faults_injected == {"transient": 1, "latency": 1}
        assert flaky.requests_seen == 2

    def test_delegates_endpoint_surface(self, endpoint):
        flaky = FaultyEndpoint(endpoint)
        assert flaky.engine is endpoint.engine
        assert flaky.max_rows == endpoint.max_rows
        assert flaky.timeout is endpoint.timeout
        flaky.request(QUERY)
        assert endpoint.cached_cursors == 1
        flaky.clear_cache()
        assert endpoint.cached_cursors == 0
