"""Differential tests: columnar SolutionTable operators match the seed
dict-based multiset semantics on the same fixtures.

The dict-based functions in ``repro.sparql.solution`` are the executable
reference (they are what the seed engine shipped with); every columnar
operator must produce the same *bag* of mappings after decoding.  Covered
edge cases per the issue: unbound shared variables, repeated variables in a
triple pattern, and duplicate-preserving (bag) multiplicities.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, TermDictionary, URIRef
from repro.sparql import Engine, ReferenceEvaluator
from repro.sparql.evaluator import Evaluator
from repro.sparql.solution import (distinct, hash_join,
                                   left_join, minus, project,
                                   table_distinct, table_from_mappings,
                                   table_join, table_left_join, table_minus,
                                   table_project, table_to_mappings,
                                   table_union)

VARS = ["a", "b", "c"]
_values = st.one_of(st.none(), st.integers(min_value=0, max_value=3))


def make_mapping(values):
    return {v: Literal(x) for v, x in zip(VARS, values) if x is not None}


_mappings = st.tuples(_values, _values, _values).map(make_mapping)
_multisets = st.lists(_mappings, max_size=12)


def as_bag(multiset):
    return sorted(tuple(sorted((k, repr(v)) for k, v in mu.items()))
                  for mu in multiset)


def tables_for(left, right):
    """Encode both multisets over one dictionary with full 3-var schemas,
    so shared-but-sometimes-unbound variables become None cells."""
    d = TermDictionary()
    return (table_from_mappings(left, d, VARS),
            table_from_mappings(right, d, VARS), d)


@settings(max_examples=120, deadline=None)
@given(_multisets, _multisets)
def test_table_join_matches_dict_join(left, right):
    lt, rt, d = tables_for(left, right)
    got = table_to_mappings(table_join(lt, rt), d)
    # The dict join receives the shared-variable list explicitly; the table
    # join derives it from the schemas.  With identical 3-var schemas both
    # see the same shared variables.
    want = hash_join(left, right, VARS)
    assert as_bag(got) == as_bag(want)


@settings(max_examples=120, deadline=None)
@given(_multisets, _multisets)
def test_table_left_join_matches_dict_left_join(left, right):
    lt, rt, d = tables_for(left, right)
    got = table_to_mappings(table_left_join(lt, rt), d)
    want = left_join(left, right, VARS)
    assert as_bag(got) == as_bag(want)


@settings(max_examples=120, deadline=None)
@given(_multisets, _multisets)
def test_table_minus_matches_dict_minus(left, right):
    lt, rt, d = tables_for(left, right)
    got = table_to_mappings(table_minus(lt, rt), d)
    want = minus(left, right, VARS)
    assert as_bag(got) == as_bag(want)


@settings(max_examples=60, deadline=None)
@given(_multisets)
def test_table_distinct_matches_dict_distinct(ms):
    d = TermDictionary()
    t = table_from_mappings(ms, d, VARS)
    got = table_to_mappings(table_distinct(t), d)
    assert as_bag(got) == as_bag(distinct(ms))


@settings(max_examples=60, deadline=None)
@given(_multisets)
def test_table_project_keeps_multiplicity(ms):
    d = TermDictionary()
    t = table_from_mappings(ms, d, VARS)
    got = table_to_mappings(table_project(t, ["a"]), d)
    assert as_bag(got) == as_bag(project(ms, ["a"]))
    assert len(got) == len(ms)  # bag semantics: one output row per input


@settings(max_examples=60, deadline=None)
@given(_multisets, _multisets)
def test_table_union_is_aligned_bag_concat(left, right):
    lt, rt, d = tables_for(left, right)
    got = table_to_mappings(table_union(lt, rt), d)
    assert as_bag(got) == as_bag(list(left) + list(right))


class TestHandPickedEdgeCases:
    def test_join_with_unbound_shared_variable(self):
        left = [{"a": Literal(1)}, {"a": Literal(1), "b": Literal(2)}]
        right = [{"b": Literal(2)}, {"b": Literal(3)}]
        lt, rt, d = tables_for(left, right)
        got = table_to_mappings(table_join(lt, rt), d)
        want = hash_join(left, right, VARS)
        assert as_bag(got) == as_bag(want)
        # {a:1} is compatible with both right rows; {a:1,b:2} only with b=2.
        assert len(got) == 3

    def test_left_join_pads_unmatched_rows(self):
        left = [{"a": Literal(1)}, {"a": Literal(9), "b": Literal(9)}]
        right = [{"a": Literal(1), "c": Literal(5)}]
        lt, rt, d = tables_for(left, right)
        got = table_to_mappings(table_left_join(lt, rt), d)
        assert as_bag(got) == as_bag(left_join(left, right, VARS))
        assert {"a": Literal(9), "b": Literal(9)} in got

    def test_minus_needs_a_shared_bound_variable(self):
        left = [{"a": Literal(1)}]
        right = [{"b": Literal(2)}]  # compatible but disjoint domains
        lt, rt, d = tables_for(left, right)
        got = table_to_mappings(table_minus(lt, rt), d)
        assert as_bag(got) == as_bag(left)  # survives: no shared bound var

    def test_duplicates_preserved_through_join(self):
        left = [{"a": Literal(1)}] * 3
        right = [{"a": Literal(1)}] * 2
        lt, rt, d = tables_for(left, right)
        got = table_to_mappings(table_join(lt, rt), d)
        assert len(got) == 6  # 3 x 2 bag multiplicities


class TestRepeatedPatternVariables:
    """Repeated variables inside one triple pattern must agree — checked at
    the id level by the columnar matcher."""

    @pytest.fixture
    def graph(self):
        g = Graph("http://g", dictionary=TermDictionary())
        u = lambda n: URIRef("http://x/" + n)
        g.add(u("n"), u("p"), u("n"))      # self loop
        g.add(u("n"), u("p"), u("other"))
        g.add(u("m"), u("loves"), u("m"))
        return g

    def run_both(self, graph, query):
        cols = Engine(graph, columnar=True).query(query)
        ref = Engine(graph, columnar=False).query(query)
        return (sorted(map(repr, cols.rows)), sorted(map(repr, ref.rows)))

    def test_subject_equals_object(self, graph):
        got, want = self.run_both(
            graph, "SELECT ?x WHERE { ?x <http://x/p> ?x }")
        assert got == want
        assert len(got) == 1

    def test_repeated_variable_across_patterns(self, graph):
        got, want = self.run_both(graph, """
            SELECT ?x ?y WHERE {
                ?x <http://x/p> ?y . ?y <http://x/p> ?y }""")
        assert got == want


class TestConditionalLeftJoin:
    """LeftJoin with a condition (algebra-level OPTIONAL+FILTER): the
    columnar implementation hash-partitions instead of the reference's
    quadratic nested loop, but the semantics must match exactly."""

    @pytest.fixture
    def dataset_query(self):
        from repro.rdf import Dataset, Variable
        from repro.sparql import algebra as alg
        from repro.sparql.expressions import CompareExpr, ConstExpr, VarExpr

        d = TermDictionary()
        g = Graph("http://g", dictionary=d)
        u = lambda n: URIRef("http://x/" + n)
        for i in range(40):
            g.add(u("m%d" % i), u("starring"), u("a%d" % (i % 7)))
        for i in range(7):
            g.add(u("a%d" % i), u("age"), Literal(10 * i))
        ds = Dataset()
        ds.add_graph(g)

        var = Variable
        left = alg.BGP([(var("m"), u("starring"), var("a"))])
        right = alg.BGP([(var("a"), u("age"), var("age"))])
        condition = CompareExpr(">", VarExpr("age"), ConstExpr(Literal(25)))
        query = alg.Query(alg.LeftJoin(left, right, condition=condition))
        return ds, query

    def test_matches_reference_semantics(self, dataset_query):
        ds, query = dataset_query
        cols = Evaluator(ds)
        table = cols.evaluate_query(query)
        got = table_to_mappings(table, cols.dictionary)
        want = ReferenceEvaluator(ds).evaluate_query(query)
        assert as_bag(got) == as_bag(want)
        # Sanity: rows whose actor is too young survive unextended.
        assert any("age" not in mu for mu in got)
        assert any("age" in mu for mu in got)
