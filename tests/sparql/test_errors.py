"""The serving error taxonomy, cancellation token, and circuit breaker."""

import pytest

from repro.sparql import (CancelToken, CircuitBreaker, CircuitOpenError,
                          EndpointError, MalformedQuery, QueryCancelled,
                          QueryRejected, QueryTimeout, ResourceExhausted,
                          RowBudgetExceeded, ServerOverloaded,
                          TransientError, classify_error, is_retryable)
from repro.sparql.evaluator import EvaluationError


class TestTaxonomy:
    def test_all_subtypes_are_endpoint_errors(self):
        for cls in (TransientError, QueryRejected, ServerOverloaded,
                    MalformedQuery, ResourceExhausted, QueryCancelled,
                    CircuitOpenError):
            assert issubclass(cls, EndpointError)

    def test_server_overloaded_is_a_rejection(self):
        assert issubclass(ServerOverloaded, QueryRejected)

    def test_only_transient_is_retryable(self):
        assert TransientError("x").retryable
        for cls in (EndpointError, QueryRejected, ServerOverloaded,
                    MalformedQuery, ResourceExhausted, QueryCancelled,
                    CircuitOpenError):
            assert not cls("x").retryable, cls

    def test_is_retryable_predicate(self):
        assert is_retryable(TransientError("x"))
        assert not is_retryable(MalformedQuery("x"))
        assert not is_retryable(ValueError("unclassified"))


class TestClassification:
    def test_timeout_is_transient(self):
        classified = classify_error(QueryTimeout("too slow"))
        assert isinstance(classified, TransientError)

    def test_parse_error_is_malformed(self):
        from repro.sparql import parse
        try:
            parse("SELECT WHERE {")
        except Exception as exc:
            assert isinstance(classify_error(exc), MalformedQuery)
        else:
            pytest.fail("expected a parse error")

    def test_row_budget_is_resource_exhausted(self):
        classified = classify_error(RowBudgetExceeded("max_rows=10"))
        assert isinstance(classified, ResourceExhausted)

    def test_other_evaluation_errors_are_malformed(self):
        classified = classify_error(EvaluationError("unknown graph"))
        assert isinstance(classified, MalformedQuery)

    def test_already_classified_passes_through(self):
        original = ServerOverloaded("queue full")
        assert classify_error(original) is original

    def test_unknown_exception_is_internal_and_final(self):
        classified = classify_error(ZeroDivisionError("bug"))
        assert type(classified) is EndpointError
        assert not classified.retryable


class TestCancelToken:
    def test_initially_clear(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op

    def test_cancel_sets_and_raises(self):
        token = CancelToken()
        token.cancel("client went away")
        assert token.cancelled
        with pytest.raises(QueryCancelled, match="client went away"):
            token.raise_if_cancelled()

    def test_cancel_idempotent_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              cooldown=cooldown, clock=clock), clock

    def test_closed_until_threshold(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allows_request()
        breaker.record_failure()
        assert not breaker.allows_request()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.allows_request()

    def test_open_fails_fast_via_check(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allows_request()
        clock.now = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allows_request()

    def test_half_open_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allows_request()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_for_another_cooldown(self):
        breaker, clock = self.make(threshold=3, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 6.0
        assert breaker.allows_request()  # half-open probe
        breaker.record_failure()         # probe failed: straight back open
        assert not breaker.allows_request()
        assert breaker.trips == 2
        clock.now = 10.9                 # cooldown restarted at t=6
        assert not breaker.allows_request()
        clock.now = 11.0
        assert breaker.allows_request()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
