"""Tests for the simulated endpoint, pagination, and SPARQL-JSON results."""

import json

import pytest

from repro.rdf import BlankNode, Graph, Literal, URIRef
from repro.sparql import Endpoint, Engine, QueryTimeout
from repro.sparql.json_results import (decode_results, decode_term,
                                       encode_results, encode_term)
from repro.sparql.results import ResultSet


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def endpoint():
    g = Graph("http://g")
    for i in range(25):
        g.add(uri("s%d" % i), uri("p"), Literal(i))
    return Endpoint(Engine(g), max_rows=10)


QUERY = "PREFIX x: <http://x/>\nSELECT ?s ?v WHERE { ?s x:p ?v }"


class TestEndpointPagination:
    def test_first_page_capped(self, endpoint):
        response = endpoint.request(QUERY)
        assert len(response.result) == 10
        assert response.has_more

    def test_offset_pages(self, endpoint):
        page2 = endpoint.request(QUERY, offset=10)
        page3 = endpoint.request(QUERY, offset=20)
        assert len(page2.result) == 10
        assert len(page3.result) == 5
        assert not page3.has_more

    def test_limit_lowers_cap_only(self, endpoint):
        assert len(endpoint.request(QUERY, limit=3).result) == 3
        assert len(endpoint.request(QUERY, limit=99).result) == 10

    def test_result_cache_avoids_reexecution(self, endpoint):
        endpoint.request(QUERY)
        executed = endpoint.engine.queries_executed
        endpoint.request(QUERY, offset=10)
        assert endpoint.engine.queries_executed == executed

    def test_clear_cache(self, endpoint):
        endpoint.request(QUERY)
        endpoint.clear_cache()
        executed = endpoint.engine.queries_executed
        endpoint.request(QUERY)
        assert endpoint.engine.queries_executed == executed + 1

    def test_payload_is_sparql_json(self, endpoint):
        response = endpoint.request(QUERY)
        document = json.loads(response.payload)
        assert document["head"]["vars"] == ["s", "v"]
        assert len(document["results"]["bindings"]) == 10

    def test_timeout_enforced(self):
        # The endpoint boundary classifies the raw QueryTimeout as a
        # retryable TransientError, chaining the original.
        from repro.sparql import TransientError
        g = Graph("http://g")
        for i in range(200):
            g.add(uri("s%d" % i), uri("p"), uri("o%d" % i))
        strict = Endpoint(Engine(g), max_rows=10, timeout=0.0)
        with pytest.raises(TransientError) as excinfo:
            strict.request("PREFIX x: <http://x/>\n"
                           "SELECT * WHERE { ?a x:p ?b . ?c x:p ?d }")
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
        assert excinfo.value.retryable

    def test_invalid_max_rows(self):
        with pytest.raises(ValueError):
            Endpoint(Engine(Graph()), max_rows=0)

    def test_requests_counted(self, endpoint):
        endpoint.request(QUERY)
        endpoint.request(QUERY, offset=10)
        assert endpoint.requests_served == 2


class TestJsonTermCodec:
    @pytest.mark.parametrize("term", [
        URIRef("http://x/a"),
        Literal("plain"),
        Literal("chat", language="fr"),
        Literal(42),
        Literal(2.5),
        Literal(True),
        BlankNode("b7"),
    ])
    def test_term_round_trip(self, term):
        assert decode_term(encode_term(term)) == term

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            decode_term({"type": "mystery", "value": "x"})

    def test_encode_non_term_rejected(self):
        with pytest.raises(TypeError):
            encode_term("not a term")


class TestJsonResultsCodec:
    def test_round_trip_with_unbound(self):
        result = ResultSet(["a", "b"], [
            (uri("x"), Literal(1)),
            (uri("y"), None),
        ])
        back = decode_results(encode_results(result))
        assert back.variables == ["a", "b"]
        assert back.rows == result.rows

    def test_empty_results(self):
        back = decode_results(encode_results(ResultSet(["a"], [])))
        assert len(back) == 0

    def test_dataframe_after_decode(self):
        result = ResultSet(["n"], [(Literal(5),), (None,)])
        df = decode_results(encode_results(result)).to_dataframe()
        assert df.column("n") == [5, None]
