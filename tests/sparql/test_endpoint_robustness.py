"""Endpoint failure paths and cursor-cache hygiene.

The cursor-drop-on-failure path, the bounded LRU cursor cache, and the
dataset-fingerprint invalidation that keeps mutated graphs from serving
stale pages.
"""

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.sparql import (Endpoint, Engine, QueryTimeout, ResourceExhausted,
                          TransientError)


def uri(name):
    return URIRef("http://x/" + name)


def make_graph(n=25):
    g = Graph("http://g")
    for i in range(n):
        g.add(uri("s%d" % i), uri("p"), Literal(i))
    return g


QUERY = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v }"
CROSS = "SELECT * WHERE { ?a <http://x/p> ?b . ?c <http://x/p> ?d }"


class TestCursorDropOnFailure:
    def test_mid_page_timeout_then_clean_reexecute(self):
        endpoint = Endpoint(Engine(make_graph(60)), max_rows=10,
                            timeout=0.0)
        with pytest.raises(TransientError) as excinfo:
            endpoint.request(CROSS)
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
        # The dead cursor was dropped, not cached.
        assert endpoint.cached_cursors == 0
        # With the budget restored the same query re-executes from
        # scratch and pages correctly.
        endpoint.timeout = None
        page = endpoint.request(CROSS)
        assert len(page.result) == 10
        assert page.has_more
        assert endpoint.cached_cursors == 1

    def test_row_budget_trip_drops_cursor(self):
        engine = Engine(make_graph(60), max_intermediate_rows=100)
        endpoint = Endpoint(engine, max_rows=10)
        # The streaming cursor pulls lazily, so the first pages stay under
        # the row budget; a deep page forces enough pulling to trip it.
        with pytest.raises(ResourceExhausted):
            endpoint.request(CROSS, offset=3000)
        assert endpoint.cached_cursors == 0

    def test_healthy_cursor_survives_other_querys_failure(self):
        endpoint = Endpoint(Engine(make_graph()), max_rows=10)
        endpoint.request(QUERY)
        assert endpoint.cached_cursors == 1
        with pytest.raises(Exception):
            endpoint.request("SELECT WHERE {")
        # The parse failure neither cached a cursor nor evicted the
        # healthy one.
        assert endpoint.cached_cursors == 1
        executed = endpoint.engine.queries_executed
        endpoint.request(QUERY, offset=10)
        assert endpoint.engine.queries_executed == executed


class TestPageEdges:
    def test_limit_zero_serves_empty_page(self):
        endpoint = Endpoint(Engine(make_graph()), max_rows=10)
        response = endpoint.request(QUERY, limit=0)
        assert len(response.result) == 0
        assert response.has_more
        # The cursor stays usable for real pages afterwards.
        assert len(endpoint.request(QUERY, limit=5).result) == 5

    def test_offset_past_end(self):
        endpoint = Endpoint(Engine(make_graph(7)), max_rows=10)
        response = endpoint.request(QUERY, offset=100)
        assert len(response.result) == 0
        assert not response.has_more

    def test_offset_exactly_at_end(self):
        endpoint = Endpoint(Engine(make_graph(10)), max_rows=10)
        first = endpoint.request(QUERY)
        assert len(first.result) == 10
        tail = endpoint.request(QUERY, offset=10)
        assert len(tail.result) == 0
        assert not tail.has_more


class TestCursorCacheLRU:
    @staticmethod
    def query_for(i):
        return "SELECT ?s WHERE { ?s <http://x/p> %d }" % i

    def test_bounded_by_cursor_cache_size(self):
        endpoint = Endpoint(Engine(make_graph()), max_rows=10,
                            cursor_cache_size=3)
        for i in range(8):
            endpoint.request(self.query_for(i))
        assert endpoint.cached_cursors == 3

    def test_least_recently_used_is_evicted(self):
        endpoint = Endpoint(Engine(make_graph()), max_rows=10,
                            cursor_cache_size=2)
        endpoint.request(self.query_for(0))
        endpoint.request(self.query_for(1))
        endpoint.request(self.query_for(0))  # refresh 0: 1 becomes LRU
        endpoint.request(self.query_for(2))  # evicts 1
        executed = endpoint.engine.queries_executed
        endpoint.request(self.query_for(0))  # still cached
        assert endpoint.engine.queries_executed == executed
        endpoint.request(self.query_for(1))  # evicted -> re-executes
        assert endpoint.engine.queries_executed == executed + 1

    def test_cache_disabled_with_size_zero(self):
        endpoint = Endpoint(Engine(make_graph()), max_rows=10,
                            cursor_cache_size=0)
        endpoint.request(QUERY)
        endpoint.request(QUERY, offset=10)
        assert endpoint.cached_cursors == 0
        assert endpoint.engine.queries_executed == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Endpoint(Engine(Graph()), cursor_cache_size=-1)

    def test_graph_mutation_invalidates_cursors(self):
        g = make_graph(5)
        endpoint = Endpoint(Engine(g), max_rows=10)
        before = endpoint.request(QUERY)
        assert len(before.result) == 5
        g.add(uri("s99"), uri("p"), Literal(99))
        # The fingerprint in the cursor key changed: the stale cursor is
        # unreachable and the fresh execution sees the new triple.
        after = endpoint.request(QUERY)
        assert len(after.result) == 6
