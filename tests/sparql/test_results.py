"""Unit tests for result sets and term conversion."""

import pytest

from repro.rdf import BlankNode, Literal, URIRef
from repro.sparql.results import ResultSet, term_to_python


class TestTermToPython:
    def test_uri_to_string(self):
        assert term_to_python(URIRef("http://x/a")) == "http://x/a"

    def test_typed_literals(self):
        assert term_to_python(Literal(5)) == 5
        assert term_to_python(Literal(2.5)) == 2.5
        assert term_to_python(Literal(True)) is True
        assert term_to_python(Literal("text")) == "text"

    def test_language_literal_keeps_text(self):
        assert term_to_python(Literal("chat", language="fr")) == "chat"

    def test_blank_node(self):
        assert term_to_python(BlankNode("b1")) == "_:b1"

    def test_none_passthrough(self):
        assert term_to_python(None) is None

    def test_non_term_rejected(self):
        with pytest.raises(TypeError):
            term_to_python(object())


class TestResultSet:
    def make(self):
        return ResultSet(["a", "b"], [
            (URIRef("http://x/1"), Literal(1)),
            (URIRef("http://x/2"), None),
        ])

    def test_len_and_iter(self):
        rs = self.make()
        assert len(rs) == 2
        assert len(list(rs)) == 2

    def test_to_dataframe_converts(self):
        df = self.make().to_dataframe()
        assert df.columns == ["a", "b"]
        assert df.column("b") == [1, None]

    def test_to_term_dataframe_preserves(self):
        df = self.make().to_term_dataframe()
        assert isinstance(df.column("a")[0], URIRef)

    def test_slice(self):
        page = self.make().slice(1, 5)
        assert len(page) == 1
        assert page.variables == ["a", "b"]

    def test_from_mappings_discovers_variables(self):
        rs = ResultSet.from_mappings([
            {"x": Literal(1)},
            {"x": Literal(2), "y": Literal(3)},
        ])
        assert rs.variables == ["x", "y"]
        assert rs.rows[0] == (Literal(1), None)

    def test_from_mappings_with_explicit_order(self):
        rs = ResultSet.from_mappings([{"x": Literal(1), "y": Literal(2)}],
                                     variables=["y", "x"])
        assert rs.rows == [(Literal(2), Literal(1))]


class TestAggregatesEndToEnd:
    """Numeric aggregates through the full frame pipeline."""

    @pytest.fixture
    def client(self):
        from repro.client import EngineClient
        from repro.rdf import Graph
        from repro.sparql import Engine
        g = Graph("http://g")
        x = "http://x/"
        for film, runtime in (("f1", 90), ("f2", 120), ("f3", 60)):
            g.add(URIRef(x + film), URIRef(x + "studio"), URIRef(x + "s1"))
            g.add(URIRef(x + film), URIRef(x + "runtime"), Literal(runtime))
        g.add(URIRef(x + "f4"), URIRef(x + "studio"), URIRef(x + "s2"))
        g.add(URIRef(x + "f4"), URIRef(x + "runtime"), Literal(100))
        return EngineClient(Engine(g))

    @pytest.fixture
    def frame(self):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g", prefixes={"x": "http://x/"})
        return kg.seed("film", "x:studio", "studio") \
            .expand("film", [("x:runtime", "runtime")])

    def test_group_min_max(self, frame, client):
        grouped = frame.group_by(["studio"]).min("runtime", "lo") \
            .max("runtime", "hi")
        result = {row["studio"]: (row["lo"], row["hi"])
                  for row in grouped.execute(client).iter_dicts()}
        assert result["http://x/s1"] == (60, 120)
        assert result["http://x/s2"] == (100, 100)

    def test_group_sum_average(self, frame, client):
        grouped = frame.group_by(["studio"]).sum("runtime", "total") \
            .average("runtime", "mean")
        result = {row["studio"]: (row["total"], row["mean"])
                  for row in grouped.execute(client).iter_dicts()}
        assert result["http://x/s1"] == (270, 90)

    def test_whole_frame_max(self, frame, client):
        df = frame.aggregate("max", "runtime").execute(client)
        assert df.to_records() == [(120,)]

    def test_aggregate_having_combination(self, frame, client):
        grouped = frame.group_by(["studio"]).sum("runtime", "total") \
            .filter({"total": [">=200"]})
        df = grouped.execute(client)
        assert df.column("studio") == ["http://x/s1"]
