"""Tests for the Section-6.3 baseline strategies.

The headline property: every strategy returns the identical result bag for
every case study (the paper verifies this before timing anything).
"""

import io

import pytest

from repro.baselines import (STRATEGIES, compatible_merge, run_strategy,
                             terms_to_python_frame, triples_to_frame)
from repro.dataframe import DataFrame
from repro.data import DBLP_URI, DBPEDIA_URI
from repro.rdf import Literal, URIRef, ntriples

CASES = ("movie_genre", "topic_modeling", "kg_embedding")


@pytest.fixture(scope="module")
def ntriples_by_graph(dataset):
    return {g.uri: ntriples.serialize(g.triples()) for g in dataset}


def graph_uri_for(case_key):
    return DBPEDIA_URI if case_key == "movie_genre" else DBLP_URI


class TestStrategyEquivalence:
    @pytest.mark.parametrize("case_key", CASES)
    def test_all_strategies_identical(self, case_key, client,
                                      ntriples_by_graph):
        source = ntriples_by_graph[graph_uri_for(case_key)]
        reference = run_strategy("rdfframes", case_key, client=client)
        assert len(reference) > 0
        for strategy in STRATEGIES:
            if strategy == "rdfframes":
                continue
            result = run_strategy(strategy, case_key, client=client,
                                  ntriples_source=io.StringIO(source))
            assert result.equals_bag(reference), (case_key, strategy)

    def test_unknown_strategy_raises(self, client):
        with pytest.raises(KeyError):
            run_strategy("quantum", "movie_genre", client=client)

    def test_unknown_case_raises(self, client):
        with pytest.raises(KeyError):
            run_strategy("sparql_pandas", "nope", client=client)

    def test_rdflib_from_path(self, tmp_path, client, ntriples_by_graph):
        path = tmp_path / "dblp.nt"
        path.write_text(ntriples_by_graph[DBLP_URI])
        result = run_strategy("rdflib_pandas", "kg_embedding",
                              ntriples_source=str(path))
        reference = run_strategy("rdfframes", "kg_embedding", client=client)
        assert result.equals_bag(reference)


class TestOps:
    def test_triples_to_frame(self):
        frame = triples_to_frame([(URIRef("http://a"), URIRef("http://p"),
                                   Literal(1))])
        assert frame.columns == ["s", "p", "o"]
        assert len(frame) == 1

    def test_terms_to_python(self):
        frame = DataFrame({"x": [URIRef("http://a"), Literal(3), None]})
        converted = terms_to_python_frame(frame)
        assert converted.column("x") == ["http://a", 3, None]

    def test_compatible_merge_unbound_matches_anything(self):
        left = DataFrame({"k": [1, 2], "a": ["x", None]})
        right = DataFrame({"k": [1, 2, 2], "a": ["x", "y", "z"]})
        out = compatible_merge(left, right, anchor="k")
        # row (1, 'x') matches one; row (2, None) matches both right rows
        assert len(out) == 3
        assert sorted(v for v in out.column("a")) == ["x", "y", "z"]

    def test_compatible_merge_bound_values_must_agree(self):
        left = DataFrame({"k": [1], "a": ["x"]})
        right = DataFrame({"k": [1], "a": ["y"]})
        assert len(compatible_merge(left, right, anchor="k")) == 0

    def test_compatible_merge_left_keeps_unmatched(self):
        left = DataFrame({"k": [1, 9], "a": ["x", "q"]})
        right = DataFrame({"k": [1], "a": ["x"]})
        out = compatible_merge(left, right, how="left", anchor="k")
        assert len(out) == 2

    def test_compatible_merge_requires_shared_columns(self):
        with pytest.raises(ValueError):
            compatible_merge(DataFrame({"a": [1]}), DataFrame({"b": [1]}))

    def test_compatible_merge_auto_anchor(self):
        left = DataFrame({"k": [1, 2], "v": [None, "b"]})
        right = DataFrame({"k": [1, 2], "v": ["a", "b"]})
        out = compatible_merge(left, right)
        assert len(out) == 2


class TestNavigationFrames:
    def test_navigation_frames_have_no_relational_ops(self):
        from repro.baselines import (kg_embedding_navigation_frame,
                                     movie_genre_navigation_frame,
                                     topic_modeling_navigation_frame)
        for factory in (movie_genre_navigation_frame,
                        topic_modeling_navigation_frame,
                        kg_embedding_navigation_frame):
            names = {op.name for op in factory().operators}
            assert names <= {"seed", "expand"}, factory.__name__
