"""Fixtures for baseline tests (shared small dataset)."""

import pytest

from repro.client import EngineClient
from repro.data import build_dataset
from repro.sparql import Engine


@pytest.fixture(scope="session")
def dataset():
    return build_dataset(scale=0.1)


@pytest.fixture(scope="session")
def client(dataset):
    return EngineClient(Engine(dataset))
