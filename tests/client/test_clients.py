"""Unit tests for the execution clients (pagination, retries, formats)."""

import pytest

from repro.client import ClientError, EngineClient, FlakyEndpoint, HttpClient
from repro.rdf import Graph, Literal, URIRef
from repro.sparql import Endpoint, Engine


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def engine():
    g = Graph("http://g")
    for i in range(37):
        g.add(uri("s%d" % i), uri("p"), Literal(i))
    g.add(uri("s0"), uri("q"), uri("s1"))
    return Engine(g)


QUERY = "PREFIX x: <http://x/>\nSELECT ?s ?v WHERE { ?s x:p ?v }"


class TestEngineClient:
    def test_execute_returns_dataframe(self, engine):
        df = EngineClient(engine).execute(QUERY)
        assert len(df) == 37
        assert df.columns == ["s", "v"]

    def test_values_converted(self, engine):
        df = EngineClient(engine).execute(QUERY)
        assert isinstance(df.column("v")[0], int)
        assert isinstance(df.column("s")[0], str)

    def test_execute_terms_keeps_terms(self, engine):
        df = EngineClient(engine).execute_terms(QUERY)
        assert isinstance(df.column("v")[0], Literal)

    def test_default_graph_uri(self, engine):
        client = EngineClient(engine, default_graph_uri="http://g")
        assert len(client.execute(QUERY)) == 37

    def test_execute_model_direct_path(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        client = EngineClient(engine)
        df = client.execute_model(frame.query_model())
        assert df.equals_bag(client.execute(frame.to_sparql()))
        assert engine.last_plan.source == "model"

    def test_frame_execute_prefers_model_path(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        df = kg.seed("s", "x:p", "v").execute(EngineClient(engine))
        assert len(df) == 37
        assert engine.last_plan.source == "model"


class TestHttpClientPagination:
    def test_assembles_all_pages(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        client = HttpClient(endpoint)
        df = client.execute(QUERY)
        assert len(df) == 37
        assert client.pages_fetched == 4

    def test_single_page_when_small(self, engine):
        endpoint = Endpoint(engine, max_rows=1000)
        client = HttpClient(endpoint)
        assert len(client.execute(QUERY)) == 37
        assert client.pages_fetched == 1

    def test_page_size_parameter(self, engine):
        endpoint = Endpoint(engine, max_rows=1000)
        client = HttpClient(endpoint, page_size=5)
        client.execute(QUERY)
        assert client.pages_fetched == 8

    def test_exact_multiple_of_page_size(self, engine):
        endpoint = Endpoint(engine, max_rows=37)
        client = HttpClient(endpoint)
        assert len(client.execute(QUERY)) == 37
        assert client.pages_fetched == 1

    def test_empty_result(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        client = HttpClient(endpoint)
        df = client.execute("PREFIX x: <http://x/>\n"
                            "SELECT ?a WHERE { ?a x:nope ?b }")
        assert len(df) == 0

    def test_pagination_matches_engine_result(self, engine):
        direct = EngineClient(engine).execute(QUERY)
        paged = HttpClient(Endpoint(engine, max_rows=7)).execute(QUERY)
        assert direct.equals_bag(paged)

    def test_execute_terms_via_http(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        df = HttpClient(endpoint).execute_terms(QUERY)
        assert isinstance(df.column("v")[0], Literal)

    def test_unbound_values_survive_the_wire(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        df = HttpClient(endpoint).execute("""
            PREFIX x: <http://x/>
            SELECT ?s ?o WHERE { ?s x:p ?v OPTIONAL { ?s x:q ?o } }""")
        assert df.column("o").count(None) == 36


class TestRetries:
    def test_retry_succeeds_after_transient_failures(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=2, max_rows=10)
        client = HttpClient(endpoint, max_retries=3)
        assert len(client.execute(QUERY)) == 37

    def test_retries_exhausted_raises(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=5, max_rows=10)
        client = HttpClient(endpoint, max_retries=1)
        with pytest.raises(ClientError):
            client.execute(QUERY)

    def test_exponential_backoff_schedule(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=3, max_rows=100)
        client = HttpClient(endpoint, max_retries=3, retry_delay=0.1,
                            max_retry_delay=10.0)
        sleeps = []
        client._sleep = sleeps.append
        client.execute(QUERY)
        assert sleeps == [0.1, 0.2, 0.4]

    def test_backoff_is_capped(self, engine):
        client = HttpClient(Endpoint(engine), retry_delay=1.0,
                            max_retry_delay=2.5)
        assert [client._backoff_delay(k) for k in range(4)] \
            == [1.0, 2.0, 2.5, 2.5]

    def test_no_sleep_after_final_failure(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=9, max_rows=10)
        client = HttpClient(endpoint, max_retries=2, retry_delay=0.1)
        sleeps = []
        client._sleep = sleeps.append
        with pytest.raises(ClientError):
            client.execute(QUERY)
        # 3 attempts -> sleeps only *between* them, never after the last.
        assert len(sleeps) == 2

    def test_error_reports_failing_offset(self, engine):
        # Pages at offset 0..9 succeed, the one at offset 10 keeps failing.
        class FailsAtOffset(Endpoint):
            def request(self, query_text, offset=0, limit=None):
                from repro.sparql import EndpointError
                if offset >= 10:
                    raise EndpointError("boom")
                return super().request(query_text, offset=offset,
                                       limit=limit)

        client = HttpClient(FailsAtOffset(engine, max_rows=10),
                            max_retries=1)
        with pytest.raises(ClientError, match="offset 10"):
            client.execute(QUERY)


class CountingFailures:
    """Duck-typed endpoint stub: always raises ``error_factory()``."""

    def __init__(self, error_factory):
        self.error_factory = error_factory
        self.calls = 0

    def request(self, query_text, offset=0, limit=None):
        self.calls += 1
        raise self.error_factory()


class TestRetryPolicy:
    """Classified failures: retryable classes burn retries, deterministic
    classes fail fast with the original chained as ``__cause__``."""

    def test_malformed_query_fails_fast(self, engine):
        from repro.sparql import MalformedQuery
        endpoint = Endpoint(engine, max_rows=10)
        client = HttpClient(endpoint, max_retries=3, retry_delay=0.1)
        sleeps = []
        client._sleep = sleeps.append
        with pytest.raises(ClientError, match="not retried") as excinfo:
            client.execute("SELECT WHERE {")
        assert isinstance(excinfo.value.__cause__, MalformedQuery)
        assert endpoint.requests_served == 1   # one attempt, no retries
        assert client.retries_performed == 0
        assert sleeps == []                    # and no backoff sleeps

    def test_resource_exhausted_fails_fast(self, engine):
        from repro.sparql import ResourceExhausted
        stub = CountingFailures(lambda: ResourceExhausted("row budget"))
        client = HttpClient(stub, max_retries=5)
        with pytest.raises(ClientError, match="ResourceExhausted"):
            client.execute(QUERY)
        assert stub.calls == 1

    def test_exhausted_retries_chain_the_last_error(self, engine):
        from repro.sparql import TransientError
        endpoint = FlakyEndpoint(engine, failures_per_query=99, max_rows=10)
        client = HttpClient(endpoint, max_retries=2)
        with pytest.raises(ClientError) as excinfo:
            client.execute(QUERY)
        assert isinstance(excinfo.value.__cause__, TransientError)

    def test_retries_performed_counter(self, engine):
        # 37 rows at max_rows=10 -> 4 pages, each failing twice first.
        endpoint = FlakyEndpoint(engine, failures_per_query=2, max_rows=10)
        client = HttpClient(endpoint, max_retries=3)
        assert len(client.execute(QUERY)) == 37
        assert client.retries_performed == 8

    def test_corrupt_payload_retried_and_absorbed(self, engine):
        class CorruptsFirstServe(Endpoint):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._corrupted = set()

            def request(self, query_text, offset=0, limit=None):
                response = super().request(query_text, offset=offset,
                                           limit=limit)
                if offset not in self._corrupted:
                    self._corrupted.add(offset)
                    response.payload = response.payload[:7]
                return response

        endpoint = CorruptsFirstServe(engine, max_rows=10)
        client = HttpClient(endpoint, max_retries=2)
        df = client.execute(QUERY)
        assert len(df) == 37                   # never silently truncated
        assert client.retries_performed == 4   # one decode retry per page


class TestCircuitBreaker:
    def make_client(self, endpoint, threshold, **kwargs):
        from repro.sparql import CircuitBreaker
        client = HttpClient(endpoint, breaker_threshold=threshold, **kwargs)
        self.clock = [0.0]
        client.breaker = CircuitBreaker(failure_threshold=threshold,
                                        cooldown=5.0,
                                        clock=lambda: self.clock[0])
        return client

    def test_breaker_opens_and_fails_fast(self, engine):
        from repro.sparql import CircuitOpenError, TransientError
        stub = CountingFailures(lambda: TransientError("blip"))
        client = self.make_client(stub, threshold=2, max_retries=5)
        with pytest.raises(ClientError) as excinfo:
            client.execute(QUERY)
        # Two real attempts tripped the breaker; the third failed fast
        # without touching the endpoint.
        assert stub.calls == 2
        assert isinstance(excinfo.value.__cause__, CircuitOpenError)
        assert client.breaker.trips == 1

    def test_half_open_probe_recovers(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=1, max_rows=100)
        client = self.make_client(endpoint, threshold=1, max_retries=3)
        with pytest.raises(ClientError):
            client.execute(QUERY)          # first failure opens the circuit
        self.clock[0] = 6.0                # cooldown elapsed -> half-open
        assert len(client.execute(QUERY)) == 37
        assert client.breaker.state == client.breaker.CLOSED

    def test_deterministic_verdicts_do_not_trip_breaker(self, engine):
        from repro.sparql import MalformedQuery, TransientError
        client = self.make_client(Endpoint(engine), threshold=2)
        client._record_breaker_outcome(TransientError("blip"))
        client._record_breaker_outcome(MalformedQuery("bad query"))
        client._record_breaker_outcome(TransientError("blip"))
        # The malformed-query verdict reset the streak in between.
        assert client.breaker.state == client.breaker.CLOSED
        assert client.breaker.trips == 0

    def test_breaker_disabled(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=3, max_rows=100)
        client = HttpClient(endpoint, breaker_threshold=None, max_retries=3)
        assert client.breaker is None
        assert len(client.execute(QUERY)) == 37


class TestFrameExecution:
    def test_frame_execute_via_http(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        endpoint = Endpoint(engine, max_rows=10)
        df = frame.execute(HttpClient(endpoint))
        assert len(df) == 37

    def test_return_format_records(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        records = frame.execute(EngineClient(engine),
                                return_format="records")
        assert isinstance(records, list)
        assert len(records) == 37

    def test_unknown_return_format(self, engine):
        from repro.core import KnowledgeGraph, RDFFrameError
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        with pytest.raises(RDFFrameError):
            frame.execute(EngineClient(engine), return_format="parquet")


class TestMalformedPayload:
    def test_malformed_json_payload_raises_client_error(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        original_request = endpoint.request

        def corrupting_request(query, offset=0, limit=None):
            response = original_request(query, offset=offset, limit=limit)
            response.payload = "{not json"
            return response

        endpoint.request = corrupting_request
        client = HttpClient(endpoint)
        with pytest.raises(ClientError):
            client.execute(QUERY)


class TestEngineSafetyValve:
    def test_runaway_query_aborted(self):
        from repro.sparql import EvaluationError
        g = Graph("http://g")
        for i in range(60):
            g.add(uri("s%d" % i), uri("p"), uri("o"))
        bounded = Engine(g, max_intermediate_rows=500)
        # A Cartesian-ish self-join: 60 x 60 rows > 500.
        with pytest.raises(EvaluationError):
            bounded.query("PREFIX x: <http://x/>\n"
                          "SELECT * WHERE { ?a x:p ?o . ?b x:p ?o }")

    def test_normal_query_unaffected(self):
        g = Graph("http://g")
        for i in range(60):
            g.add(uri("s%d" % i), uri("p"), uri("o%d" % i))
        bounded = Engine(g, max_intermediate_rows=500)
        assert len(bounded.query("PREFIX x: <http://x/>\n"
                                 "SELECT * WHERE { ?a x:p ?o }")) == 60


class TestStreamingPagination:
    """Page fetches ride the engine's streaming cursor: serving the page
    at ``offset`` pulls O(offset + page) rows, not the full result."""

    @pytest.fixture
    def big_engine(self):
        g = Graph("http://g")
        for i in range(400):
            g.add(uri("s%d" % i), uri("p"), Literal(i))
        return Engine(g)

    BIG_QUERY = "PREFIX x: <http://x/>\nSELECT ?s ?v WHERE { ?s x:p ?v }"

    def test_endpoint_page_pulls_offset_plus_n_rows(self, big_engine):
        endpoint = Endpoint(big_engine, max_rows=20)
        response = endpoint.request(self.BIG_QUERY)
        assert len(response.result) == 20
        assert response.has_more
        pulled = big_engine.last_stats.rows_pulled
        assert 0 < pulled < 400  # nowhere near the full 400-row result
        # The next page only pulls the *additional* rows.
        endpoint.request(self.BIG_QUERY, offset=20)
        assert big_engine.last_stats.rows_pulled < 400

    def test_endpoint_pagination_result_complete(self, big_engine):
        endpoint = Endpoint(big_engine, max_rows=32)
        client = HttpClient(endpoint)
        df = client.execute(self.BIG_QUERY)
        direct = EngineClient(big_engine).execute(self.BIG_QUERY)
        assert df.equals_bag(direct)

    def test_http_client_execute_page(self, big_engine):
        endpoint = Endpoint(big_engine, max_rows=1000)
        client = HttpClient(endpoint)
        page = client.execute_page(self.BIG_QUERY, offset=5, limit=10)
        assert len(page) == 10
        assert client.pages_fetched == 1  # one request filled the window
        assert big_engine.last_stats.rows_pulled < 200

    def test_engine_client_execute_page(self, big_engine):
        client = EngineClient(big_engine)
        full = client.execute(self.BIG_QUERY)
        page = client.execute_page(self.BIG_QUERY, offset=10, limit=25)
        assert len(page) == 25
        assert client.last_stats.rows_pulled < 200
        assert page.column("s") == full.column("s")[10:35]

    def test_engine_client_execute_page_model(self, big_engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        client = EngineClient(big_engine)
        page = client.execute_page(frame.query_model(), limit=7)
        assert len(page) == 7

    def test_execute_page_spans_endpoint_cap(self, big_engine):
        # A window larger than the endpoint's per-response cap is filled
        # by several requests — never silently truncated at the cap.
        endpoint = Endpoint(big_engine, max_rows=50)
        client = HttpClient(endpoint)
        full = EngineClient(big_engine).execute(self.BIG_QUERY)
        page = client.execute_page(self.BIG_QUERY, offset=10, limit=120)
        assert len(page) == 120
        assert client.pages_fetched == 3
        assert page.column("s") == full.column("s")[10:130]

    def test_execute_page_window_past_end(self, big_engine):
        endpoint = Endpoint(big_engine, max_rows=50)
        page = HttpClient(endpoint).execute_page(self.BIG_QUERY,
                                                 offset=390, limit=120)
        assert len(page) == 10

    def test_endpoint_timeout_budgets_each_request(self, big_engine):
        # The per-query timeout bounds each page's evaluation, not the
        # cursor's wall-clock lifetime: client think-time between page
        # requests must not accumulate into a QueryTimeout.
        import time as _time
        endpoint = Endpoint(big_engine, max_rows=10, timeout=0.5)
        endpoint.request(self.BIG_QUERY)
        _time.sleep(0.6)  # longer than the whole budget
        response = endpoint.request(self.BIG_QUERY, offset=10)
        assert len(response.result) == 10

    def test_failed_request_does_not_poison_cursor_cache(self, big_engine):
        # A request that times out must not leave a dead cursor behind:
        # once the pressure clears, the same query re-executes fresh.
        # (The endpoint boundary classifies the timeout as retryable.)
        from repro.sparql import QueryTimeout, TransientError
        cross = ("PREFIX x: <http://x/>\n"
                 "SELECT * WHERE { ?a x:p ?v . ?b x:p ?w }")
        endpoint = Endpoint(big_engine, max_rows=10, timeout=0.0)
        with pytest.raises(TransientError) as excinfo:
            endpoint.request(cross)
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
        endpoint.timeout = None
        response = endpoint.request(cross)
        assert len(response.result) == 10
        assert response.has_more

    def test_engine_stream_honors_streaming_false(self, big_engine):
        # streaming=False pins the materialized plane everywhere,
        # including the cursor path used by endpoints.
        pinned = Engine(big_engine.dataset, streaming=False)
        cursor = pinned.stream(self.BIG_QUERY)
        want = pinned.query(self.BIG_QUERY)
        assert cursor.result().rows == want.rows
        assert pinned.last_stats.rows_pulled == 0
