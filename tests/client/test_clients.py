"""Unit tests for the execution clients (pagination, retries, formats)."""

import pytest

from repro.client import ClientError, EngineClient, FlakyEndpoint, HttpClient
from repro.rdf import Graph, Literal, URIRef
from repro.sparql import Endpoint, Engine


def uri(name):
    return URIRef("http://x/" + name)


@pytest.fixture
def engine():
    g = Graph("http://g")
    for i in range(37):
        g.add(uri("s%d" % i), uri("p"), Literal(i))
    g.add(uri("s0"), uri("q"), uri("s1"))
    return Engine(g)


QUERY = "PREFIX x: <http://x/>\nSELECT ?s ?v WHERE { ?s x:p ?v }"


class TestEngineClient:
    def test_execute_returns_dataframe(self, engine):
        df = EngineClient(engine).execute(QUERY)
        assert len(df) == 37
        assert df.columns == ["s", "v"]

    def test_values_converted(self, engine):
        df = EngineClient(engine).execute(QUERY)
        assert isinstance(df.column("v")[0], int)
        assert isinstance(df.column("s")[0], str)

    def test_execute_terms_keeps_terms(self, engine):
        df = EngineClient(engine).execute_terms(QUERY)
        assert isinstance(df.column("v")[0], Literal)

    def test_default_graph_uri(self, engine):
        client = EngineClient(engine, default_graph_uri="http://g")
        assert len(client.execute(QUERY)) == 37

    def test_execute_model_direct_path(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        client = EngineClient(engine)
        df = client.execute_model(frame.query_model())
        assert df.equals_bag(client.execute(frame.to_sparql()))
        assert engine.last_plan.source == "model"

    def test_frame_execute_prefers_model_path(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        df = kg.seed("s", "x:p", "v").execute(EngineClient(engine))
        assert len(df) == 37
        assert engine.last_plan.source == "model"


class TestHttpClientPagination:
    def test_assembles_all_pages(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        client = HttpClient(endpoint)
        df = client.execute(QUERY)
        assert len(df) == 37
        assert client.pages_fetched == 4

    def test_single_page_when_small(self, engine):
        endpoint = Endpoint(engine, max_rows=1000)
        client = HttpClient(endpoint)
        assert len(client.execute(QUERY)) == 37
        assert client.pages_fetched == 1

    def test_page_size_parameter(self, engine):
        endpoint = Endpoint(engine, max_rows=1000)
        client = HttpClient(endpoint, page_size=5)
        client.execute(QUERY)
        assert client.pages_fetched == 8

    def test_exact_multiple_of_page_size(self, engine):
        endpoint = Endpoint(engine, max_rows=37)
        client = HttpClient(endpoint)
        assert len(client.execute(QUERY)) == 37
        assert client.pages_fetched == 1

    def test_empty_result(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        client = HttpClient(endpoint)
        df = client.execute("PREFIX x: <http://x/>\n"
                            "SELECT ?a WHERE { ?a x:nope ?b }")
        assert len(df) == 0

    def test_pagination_matches_engine_result(self, engine):
        direct = EngineClient(engine).execute(QUERY)
        paged = HttpClient(Endpoint(engine, max_rows=7)).execute(QUERY)
        assert direct.equals_bag(paged)

    def test_execute_terms_via_http(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        df = HttpClient(endpoint).execute_terms(QUERY)
        assert isinstance(df.column("v")[0], Literal)

    def test_unbound_values_survive_the_wire(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        df = HttpClient(endpoint).execute("""
            PREFIX x: <http://x/>
            SELECT ?s ?o WHERE { ?s x:p ?v OPTIONAL { ?s x:q ?o } }""")
        assert df.column("o").count(None) == 36


class TestRetries:
    def test_retry_succeeds_after_transient_failures(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=2, max_rows=10)
        client = HttpClient(endpoint, max_retries=3)
        assert len(client.execute(QUERY)) == 37

    def test_retries_exhausted_raises(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=5, max_rows=10)
        client = HttpClient(endpoint, max_retries=1)
        with pytest.raises(ClientError):
            client.execute(QUERY)

    def test_exponential_backoff_schedule(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=3, max_rows=100)
        client = HttpClient(endpoint, max_retries=3, retry_delay=0.1,
                            max_retry_delay=10.0)
        sleeps = []
        client._sleep = sleeps.append
        client.execute(QUERY)
        assert sleeps == [0.1, 0.2, 0.4]

    def test_backoff_is_capped(self, engine):
        client = HttpClient(Endpoint(engine), retry_delay=1.0,
                            max_retry_delay=2.5)
        assert [client._backoff_delay(k) for k in range(4)] \
            == [1.0, 2.0, 2.5, 2.5]

    def test_no_sleep_after_final_failure(self, engine):
        endpoint = FlakyEndpoint(engine, failures_per_query=9, max_rows=10)
        client = HttpClient(endpoint, max_retries=2, retry_delay=0.1)
        sleeps = []
        client._sleep = sleeps.append
        with pytest.raises(ClientError):
            client.execute(QUERY)
        # 3 attempts -> sleeps only *between* them, never after the last.
        assert len(sleeps) == 2

    def test_error_reports_failing_offset(self, engine):
        # Pages at offset 0..9 succeed, the one at offset 10 keeps failing.
        class FailsAtOffset(Endpoint):
            def request(self, query_text, offset=0, limit=None):
                from repro.sparql import EndpointError
                if offset >= 10:
                    raise EndpointError("boom")
                return super().request(query_text, offset=offset,
                                       limit=limit)

        client = HttpClient(FailsAtOffset(engine, max_rows=10),
                            max_retries=1)
        with pytest.raises(ClientError, match="offset 10"):
            client.execute(QUERY)


class TestFrameExecution:
    def test_frame_execute_via_http(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        endpoint = Endpoint(engine, max_rows=10)
        df = frame.execute(HttpClient(endpoint))
        assert len(df) == 37

    def test_return_format_records(self, engine):
        from repro.core import KnowledgeGraph
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        records = frame.execute(EngineClient(engine),
                                return_format="records")
        assert isinstance(records, list)
        assert len(records) == 37

    def test_unknown_return_format(self, engine):
        from repro.core import KnowledgeGraph, RDFFrameError
        kg = KnowledgeGraph(graph_uri="http://g",
                            prefixes={"x": "http://x/"})
        frame = kg.seed("s", "x:p", "v")
        with pytest.raises(RDFFrameError):
            frame.execute(EngineClient(engine), return_format="parquet")


class TestMalformedPayload:
    def test_malformed_json_payload_raises_client_error(self, engine):
        endpoint = Endpoint(engine, max_rows=10)
        original_request = endpoint.request

        def corrupting_request(query, offset=0, limit=None):
            response = original_request(query, offset=offset, limit=limit)
            response.payload = "{not json"
            return response

        endpoint.request = corrupting_request
        client = HttpClient(endpoint)
        with pytest.raises(ClientError):
            client.execute(QUERY)


class TestEngineSafetyValve:
    def test_runaway_query_aborted(self):
        from repro.sparql import EvaluationError
        g = Graph("http://g")
        for i in range(60):
            g.add(uri("s%d" % i), uri("p"), uri("o"))
        bounded = Engine(g, max_intermediate_rows=500)
        # A Cartesian-ish self-join: 60 x 60 rows > 500.
        with pytest.raises(EvaluationError):
            bounded.query("PREFIX x: <http://x/>\n"
                          "SELECT * WHERE { ?a x:p ?o . ?b x:p ?o }")

    def test_normal_query_unaffected(self):
        g = Graph("http://g")
        for i in range(60):
            g.add(uri("s%d" % i), uri("p"), uri("o%d" % i))
        bounded = Engine(g, max_intermediate_rows=500)
        assert len(bounded.query("PREFIX x: <http://x/>\n"
                                 "SELECT * WHERE { ?a x:p ?o }")) == 60
