"""Property-based tests for DataFrame invariants."""

from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame

_values = st.one_of(st.integers(min_value=-50, max_value=50),
                    st.sampled_from(["a", "b", "c"]),
                    st.none())
_frames = st.lists(st.tuples(_values, _values), max_size=40).map(
    lambda rows: DataFrame.from_records(rows, columns=["x", "y"]))
_keyed_frames = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), _values), max_size=30
).map(lambda rows: DataFrame.from_records(rows, columns=["k", "v"]))


@settings(max_examples=60, deadline=None)
@given(_frames)
def test_distinct_idempotent(df):
    once = df.distinct()
    assert once.distinct().to_records() == once.to_records()


@settings(max_examples=60, deadline=None)
@given(_frames)
def test_distinct_preserves_set(df):
    assert set(df.distinct().to_records()) == set(df.to_records())


@settings(max_examples=60, deadline=None)
@given(_frames)
def test_sort_is_permutation(df):
    out = df.sort("x")
    assert sorted(map(repr, out.to_records())) == \
        sorted(map(repr, df.to_records()))


@settings(max_examples=60, deadline=None)
@given(_frames, st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=10))
def test_head_matches_slicing(df, k, offset):
    out = df.head(k, offset)
    assert out.to_records() == df.to_records()[offset:offset + k]


@settings(max_examples=60, deadline=None)
@given(_keyed_frames, _keyed_frames)
def test_inner_join_cardinality(left, right):
    """|A join B on k| equals the sum over keys of count_A(k)*count_B(k)."""
    right = right.rename({"v": "w"})
    out = left.merge(right, "k", "k")
    expected = 0
    left_counts = {}
    for value in left.column("k"):
        if value is not None:
            left_counts[value] = left_counts.get(value, 0) + 1
    for value in right.column("k"):
        if value is not None:
            expected += left_counts.get(value, 0)
    assert len(out) == expected


@settings(max_examples=60, deadline=None)
@given(_keyed_frames, _keyed_frames)
def test_left_join_keeps_all_left_rows(left, right):
    right = right.rename({"v": "w"})
    out = left.merge(right, "k", "k", how="left")
    assert len(out) >= len(left)
    # every left key value survives with at least its multiplicity
    def key_counts(frame):
        counts = {}
        for value in frame.column("k"):
            counts[value] = counts.get(value, 0) + 1
        return counts
    left_counts = key_counts(left)
    out_counts = key_counts(out)
    for key, count in left_counts.items():
        assert out_counts.get(key, 0) >= count


@settings(max_examples=60, deadline=None)
@given(_keyed_frames, _keyed_frames)
def test_outer_join_contains_both_key_sets(left, right):
    right = right.rename({"v": "w"})
    out = left.merge(right, "k", "k", how="outer")
    out_keys = set(out.column("k"))
    for key in left.column("k"):
        assert key in out_keys
    for key in right.column("k"):
        if key is not None:
            assert key in out_keys


@settings(max_examples=60, deadline=None)
@given(_keyed_frames)
def test_groupby_count_sums_to_bound_rows(df):
    out = df.groupby("k").agg("count", "v")
    bound = sum(1 for v in df.column("v") if v is not None)
    assert sum(out.column("v_count")) == bound


@settings(max_examples=60, deadline=None)
@given(_frames)
def test_csv_round_trip_bag(df):
    import io
    # CSV cannot distinguish None from "" for strings; restrict to the
    # frame with Nones dropped for exactness of this property.
    clean = df.dropna()
    text = clean.to_csv()
    back = DataFrame.read_csv(io.StringIO(text))
    assert back.equals_bag(clean)


@settings(max_examples=60, deadline=None)
@given(_frames, _frames)
def test_concat_length(a, b):
    assert len(a.concat(b)) == len(a) + len(b)
