"""Property tests: DataFrame.merge against brute-force reference joins.

The client-side baselines rely on these join semantics to replicate SPARQL
results exactly, so they get their own reference-model check.
"""

from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame

_keys = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
_payload = st.sampled_from(["x", "y", "z"])


def frame_from(rows, value_col):
    return DataFrame.from_records(rows, columns=["k", value_col])


_left_frames = st.lists(st.tuples(_keys, _payload), max_size=15).map(
    lambda rows: frame_from(rows, "l"))
_right_frames = st.lists(st.tuples(_keys, _payload), max_size=15).map(
    lambda rows: frame_from(rows, "r"))


def reference_merge(left, right, how):
    left_rows = list(left.iter_dicts())
    right_rows = list(right.iter_dicts())
    out = []
    matched_right = set()
    for lrow in left_rows:
        hits = [j for j, rrow in enumerate(right_rows)
                if lrow["k"] is not None and rrow["k"] == lrow["k"]]
        if hits:
            for j in hits:
                matched_right.add(j)
                merged = dict(lrow)
                merged["r"] = right_rows[j]["r"]
                out.append(merged)
        elif how in ("left", "outer"):
            out.append({"k": lrow["k"], "l": lrow["l"], "r": None})
    if how == "outer":
        for j, rrow in enumerate(right_rows):
            if j not in matched_right:
                out.append({"k": rrow["k"], "l": None, "r": rrow["r"]})
    return out


def as_bag(rows):
    return sorted(repr((row.get("k"), row.get("l"), row.get("r")))
                  for row in rows)


@settings(max_examples=80, deadline=None)
@given(_left_frames, _right_frames)
def test_inner_merge_matches_reference(left, right):
    out = left.merge(right, "k", "k", how="inner")
    assert as_bag(list(out.iter_dicts())) == \
        as_bag(reference_merge(left, right, "inner"))


@settings(max_examples=80, deadline=None)
@given(_left_frames, _right_frames)
def test_left_merge_matches_reference(left, right):
    out = left.merge(right, "k", "k", how="left")
    assert as_bag(list(out.iter_dicts())) == \
        as_bag(reference_merge(left, right, "left"))


@settings(max_examples=80, deadline=None)
@given(_left_frames, _right_frames)
def test_outer_merge_matches_reference(left, right):
    out = left.merge(right, "k", "k", how="outer")
    assert as_bag(list(out.iter_dicts())) == \
        as_bag(reference_merge(left, right, "outer"))


@settings(max_examples=60, deadline=None)
@given(_left_frames, _right_frames)
def test_right_merge_is_flipped_left(left, right):
    flipped = right.merge(left, "k", "k", how="left")
    out = left.merge(right, "k", "k", how="right")
    assert as_bag(list(out.iter_dicts())) == as_bag(list(flipped.iter_dicts()))
