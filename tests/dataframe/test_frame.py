"""Unit tests for the columnar DataFrame."""

import io

import pytest

from repro.dataframe import DataFrame, DataFrameError


@pytest.fixture
def people():
    return DataFrame({
        "name": ["ann", "bob", "cid", "dee"],
        "age": [30, 25, 30, None],
        "city": ["doha", "berlin", "doha", "paris"],
    })


class TestConstruction:
    def test_from_columns(self, people):
        assert len(people) == 4
        assert people.columns == ["name", "age", "city"]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(DataFrameError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_from_records(self):
        df = DataFrame.from_records([(1, "x"), (2, "y")], columns=["n", "s"])
        assert df.column("n") == [1, 2]

    def test_from_records_length_mismatch(self):
        with pytest.raises(DataFrameError):
            DataFrame.from_records([(1,)], columns=["a", "b"])

    def test_from_dicts_missing_keys(self):
        df = DataFrame.from_dicts([{"a": 1}, {"a": 2, "b": 3}])
        assert df.column("b") == [None, 3]

    def test_empty_frame(self):
        df = DataFrame()
        assert len(df) == 0
        assert df.empty

    def test_columns_only(self):
        df = DataFrame(columns=["a", "b"])
        assert df.columns == ["a", "b"]
        assert len(df) == 0

    def test_explicit_column_order(self):
        df = DataFrame({"b": [1], "a": [2]}, columns=["a", "b"])
        assert df.columns == ["a", "b"]

    def test_missing_declared_column(self):
        with pytest.raises(DataFrameError):
            DataFrame({"a": [1]}, columns=["a", "b"])


class TestAccess:
    def test_column_access(self, people):
        assert people["name"][0] == "ann"

    def test_unknown_column_raises(self, people):
        with pytest.raises(DataFrameError):
            people.column("nope")

    def test_row(self, people):
        assert people.row(1) == ("bob", 25, "berlin")

    def test_iter_dicts(self, people):
        first = next(people.iter_dicts())
        assert first == {"name": "ann", "age": 30, "city": "doha"}

    def test_contains(self, people):
        assert "name" in people
        assert "nope" not in people


class TestRelationalOps:
    def test_select(self, people):
        df = people.select(["city", "name"])
        assert df.columns == ["city", "name"]

    def test_select_unknown_column(self, people):
        with pytest.raises(DataFrameError):
            people.select(["nope"])

    def test_rename(self, people):
        df = people.rename({"name": "person"})
        assert "person" in df.columns and "name" not in df.columns

    def test_rename_collision_rejected(self, people):
        with pytest.raises(DataFrameError):
            people.rename({"name": "age"})

    def test_filter_mask(self, people):
        df = people.filter_mask([True, False, True, False])
        assert df.column("name") == ["ann", "cid"]

    def test_filter_mask_wrong_length(self, people):
        with pytest.raises(DataFrameError):
            people.filter_mask([True])

    def test_filter_predicate(self, people):
        df = people.filter(lambda row: row["city"] == "doha")
        assert len(df) == 2

    def test_filter_eq(self, people):
        assert len(people.filter_eq("age", 30)) == 2

    def test_dropna(self, people):
        assert len(people.dropna(["age"])) == 3

    def test_dropna_all_columns(self, people):
        assert len(people.dropna()) == 3

    def test_assign_new_column(self, people):
        df = people.assign("tag", list("wxyz"))
        assert df.columns[-1] == "tag"
        # original untouched
        assert "tag" not in people.columns

    def test_assign_replaces(self, people):
        df = people.assign("age", [1, 2, 3, 4])
        assert df.column("age") == [1, 2, 3, 4]
        assert df.columns == people.columns

    def test_distinct(self):
        df = DataFrame({"a": [1, 1, 2, 1]})
        assert df.distinct().column("a") == [1, 2]

    def test_head(self, people):
        assert people.head(2).column("name") == ["ann", "bob"]
        assert people.head(2, offset=1).column("name") == ["bob", "cid"]

    def test_concat_aligns_columns(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2], "y": ["v"]})
        joined = a.concat(b)
        assert joined.column("y") == [None, "v"]
        assert len(joined) == 2


class TestSort:
    def test_sort_ascending(self, people):
        df = people.sort("name")
        assert df.column("name") == ["ann", "bob", "cid", "dee"]

    def test_sort_descending(self, people):
        df = people.sort("name", ascending=False)
        assert df.column("name")[0] == "dee"

    def test_none_sorts_last_both_directions(self, people):
        assert people.sort("age").column("name")[-1] == "dee"
        assert people.sort("age", ascending=False).column("name")[-1] == "dee"

    def test_multi_key_sort(self):
        df = DataFrame({"a": [1, 1, 2], "b": [2, 1, 0]})
        out = df.sort([("a", "asc"), ("b", "desc")])
        assert out.to_records() == [(1, 2), (1, 1), (2, 0)]

    def test_sort_mixed_types(self):
        df = DataFrame({"v": ["b", 2, None, 1, "a"]})
        assert df.sort("v").column("v") == [1, 2, "a", "b", None]


class TestMerge:
    def test_inner(self):
        left = DataFrame({"k": [1, 2, 3], "l": ["a", "b", "c"]})
        right = DataFrame({"k": [2, 3, 4], "r": ["x", "y", "z"]})
        out = left.merge(right, "k", "k")
        assert out.to_records() == [(2, "b", "x"), (3, "c", "y")]

    def test_left(self):
        left = DataFrame({"k": [1, 2], "l": ["a", "b"]})
        right = DataFrame({"k": [2], "r": ["x"]})
        out = left.merge(right, "k", "k", how="left")
        assert out.to_records() == [(1, "a", None), (2, "b", "x")]

    def test_right(self):
        left = DataFrame({"k": [2], "l": ["a"]})
        right = DataFrame({"k": [1, 2], "r": ["x", "y"]})
        out = left.merge(right, "k", "k", how="right")
        assert sorted(out.column("k")) == [1, 2]

    def test_outer(self):
        left = DataFrame({"k": [1, 2], "l": ["a", "b"]})
        right = DataFrame({"k": [2, 3], "r": ["x", "y"]})
        out = left.merge(right, "k", "k", how="outer")
        assert sorted(v for v in out.column("k")) == [1, 2, 3]

    def test_different_key_names(self):
        left = DataFrame({"a": [1], "l": ["v"]})
        right = DataFrame({"b": [1], "r": ["w"]})
        out = left.merge(right, "a", "b")
        assert out.columns == ["a", "l", "r"]

    def test_duplicate_keys_multiply(self):
        left = DataFrame({"k": [1, 1]})
        right = DataFrame({"k": [1, 1], "r": ["x", "y"]})
        assert len(left.merge(right, "k", "k")) == 4

    def test_none_keys_do_not_match(self):
        left = DataFrame({"k": [None, 1]})
        right = DataFrame({"k": [None, 1], "r": ["x", "y"]})
        out = left.merge(right, "k", "k")
        assert len(out) == 1

    def test_unknown_join_type(self):
        df = DataFrame({"k": [1]})
        with pytest.raises(DataFrameError):
            df.merge(df, "k", "k", how="sideways")


class TestGroupBy:
    def test_count(self, people):
        out = people.groupby("city").agg("count", "name")
        by_city = dict(out.to_records())
        assert by_city == {"doha": 2, "berlin": 1, "paris": 1}

    def test_count_skips_none(self, people):
        out = people.groupby("city").agg("count", "age")
        assert dict(out.to_records())["paris"] == 0

    def test_count_unique(self):
        df = DataFrame({"g": ["a", "a", "a"], "v": [1, 1, 2]})
        out = df.groupby("g").agg("count", "v", unique=True)
        assert out.to_records() == [("a", 2)]

    def test_sum_min_max_mean(self):
        df = DataFrame({"g": ["a", "a", "b"], "v": [1, 3, 5]})
        assert dict(df.groupby("g").agg("sum", "v").to_records()) == \
            {"a": 4, "b": 5}
        assert dict(df.groupby("g").agg("min", "v").to_records())["a"] == 1
        assert dict(df.groupby("g").agg("max", "v").to_records())["a"] == 3
        assert dict(df.groupby("g").agg("average", "v").to_records())["a"] == 2

    def test_multi_column_groupby(self):
        df = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"], "v": [1, 1, 1]})
        out = df.groupby(["a", "b"]).agg("count", "v")
        assert len(out) == 2

    def test_size(self, people):
        out = people.groupby("city").size()
        assert dict(out.to_records())["doha"] == 2

    def test_unknown_aggregate(self, people):
        with pytest.raises(DataFrameError):
            people.groupby("city").agg("median", "age")

    def test_whole_frame_aggregate(self, people):
        assert people.aggregate("count", "age") == 3
        assert people.aggregate("max", "age") == 30


class TestCsv:
    def test_round_trip(self, people):
        text = people.to_csv()
        back = DataFrame.read_csv(io.StringIO(text))
        assert back.equals_bag(people)

    def test_none_becomes_empty_cell(self, people):
        assert ",," in people.to_csv() or ",\n" in people.to_csv()

    def test_read_parses_numbers(self):
        back = DataFrame.read_csv(io.StringIO("a,b\n1,2.5\n"))
        assert back.row(0) == (1, 2.5)

    def test_file_round_trip(self, people, tmp_path):
        path = str(tmp_path / "out.csv")
        people.to_csv(path)
        assert DataFrame.read_csv(path).equals_bag(people)

    def test_empty_csv(self):
        assert len(DataFrame.read_csv(io.StringIO(""))) == 0


class TestEquality:
    def test_bag_equality_ignores_order(self):
        a = DataFrame({"x": [1, 2], "y": ["a", "b"]})
        b = DataFrame({"y": ["b", "a"], "x": [2, 1]})
        assert a.equals_bag(b)

    def test_bag_equality_respects_multiplicity(self):
        a = DataFrame({"x": [1, 1]})
        b = DataFrame({"x": [1]})
        assert not a.equals_bag(b)

    def test_bag_equality_different_columns(self):
        assert not DataFrame({"x": [1]}).equals_bag(DataFrame({"y": [1]}))

    def test_strict_equality(self):
        a = DataFrame({"x": [1]})
        assert a == DataFrame({"x": [1]})
        assert a != DataFrame({"x": [2]})
