"""WAL append/replay, torn tails, mid-log damage, fail-stop."""

import os

import pytest

from repro.sparql.errors import StorageError, WalTruncatedError
from repro.storage.fileio import StorageIO, corrupt_bytes, flip_bit, \
    truncate_file
from repro.storage.wal import (OP_ADD, OP_REMOVE, WAL_MAGIC, WalRecord,
                               WriteAheadLog, list_wal_segments,
                               replay_wal, wal_segment_path, _read_record)

LINE = "<http://x/s> <http://x/p> <http://x/o> ."


def fill(directory, count, start=1, sync_every=1):
    wal = WriteAheadLog(StorageIO(), directory, start,
                        sync_every=sync_every)
    for i in range(count):
        op = OP_ADD if i % 3 else OP_REMOVE
        wal.append(op, "urn:g%d" % (i % 2), LINE, i + 1)
    wal.close()
    return wal


class TestRecordCodec:
    def test_round_trip(self):
        record = WalRecord(7, OP_ADD, "urn:g", LINE, 12)
        frame = record.encode()
        decoded, pos = _read_record(frame, 0)
        assert decoded == record
        assert pos == len(frame)

    def test_checksum_detects_any_flip(self):
        frame = bytearray(WalRecord(7, OP_ADD, "urn:g", LINE, 12).encode())
        for index in range(len(frame)):
            mutated = bytearray(frame)
            mutated[index] ^= 0x10
            try:
                decoded, _ = _read_record(bytes(mutated), 0)
            except Exception:
                continue
            # The only undetected flips would corrupt the record; none
            # may decode to something different yet "valid".
            assert decoded == WalRecord(7, OP_ADD, "urn:g", LINE, 12)


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 10)
        result = replay_wal(directory, 0)
        assert result.error is None
        assert [r.seqno for r in result.records] == list(range(1, 11))
        assert result.last_seqno == 10
        assert result.truncated_bytes == 0
        # replay past a checkpoint point skips covered records
        assert [r.seqno for r in replay_wal(directory, 7).records] == [8, 9, 10]

    def test_fsync_batching(self, tmp_path):
        wal = WriteAheadLog(StorageIO(), str(tmp_path), 1, sync_every=4)
        baseline = wal.fsyncs
        for i in range(8):
            wal.append(OP_ADD, "urn:g", LINE, i + 1)
        assert wal.fsyncs == baseline + 2
        wal.append(OP_ADD, "urn:g", LINE, 9)
        wal.flush()
        assert wal.fsyncs == baseline + 3
        wal.close()

    def test_segment_chaining(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 5, start=1)
        fill(directory, 5, start=6)
        assert len(list_wal_segments(directory)) == 2
        result = replay_wal(directory, 0)
        assert [r.seqno for r in result.records] == list(range(1, 11))
        # a from_seqno covering the first segment skips reading it
        result = replay_wal(directory, 5)
        assert result.segments_read == 1

    def test_missing_middle_segment_is_a_hole(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 5, start=1)
        fill(directory, 5, start=6)
        fill(directory, 5, start=11)
        os.remove(wal_segment_path(directory, 6))
        result = replay_wal(directory, 0)
        assert isinstance(result.error, WalTruncatedError)
        assert result.error.recovered_seqno == 5


class TestTornTail:
    def test_truncated_final_record_recovers_prefix(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 10)
        path = list_wal_segments(directory)[0][1]
        size = os.path.getsize(path)
        truncate_file(path, size - 3)
        result = replay_wal(directory, 0)
        assert result.error is None
        assert result.last_seqno == 9
        assert result.truncated_bytes > 0
        # the tail was physically cut, so a second replay is clean
        again = replay_wal(directory, 0)
        assert again.truncated_bytes == 0
        assert again.last_seqno == 9

    def test_every_truncation_point_recovers(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 6)
        path = list_wal_segments(directory)[0][1]
        pristine = open(path, "rb").read()
        for cut in range(len(pristine)):
            with open(path, "wb") as fobj:
                fobj.write(pristine[:cut])
            result = replay_wal(directory, 0, truncate_torn=False)
            assert result.error is None, cut
            assert 0 <= result.last_seqno <= 6
            seqnos = [r.seqno for r in result.records]
            assert seqnos == list(range(1, result.last_seqno + 1)), cut

    def test_torn_magic_only_segment(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 3, start=1)
        # a crash during creation of the *next* segment leaves a partial
        # magic; recovery must drop it without touching earlier records
        partial = wal_segment_path(directory, 4)
        with open(partial, "wb") as fobj:
            fobj.write(WAL_MAGIC[:3])
        result = replay_wal(directory, 0)
        assert result.error is None
        assert result.last_seqno == 3
        assert os.path.getsize(partial) == 0


class TestMidLogDamage:
    def test_corrupt_middle_record_is_truncation_error(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 10)
        path = list_wal_segments(directory)[0][1]
        # Wipe out the middle of the file: records after the damage
        # still exist, so this is a hole, not a torn tail.
        middle = os.path.getsize(path) // 2
        corrupt_bytes(path, middle, b"\x00" * 8)
        result = replay_wal(directory, 0)
        assert isinstance(result.error, WalTruncatedError)
        assert 0 < result.error.recovered_seqno < 10
        assert result.error.retryable is False

    def test_every_single_bit_flip_is_detected(self, tmp_path):
        directory = str(tmp_path)
        fill(directory, 4)
        path = list_wal_segments(directory)[0][1]
        pristine = open(path, "rb").read()
        clean = replay_wal(directory, 0)
        baseline = [(r.seqno, r.op, r.graph_uri, r.triple_line, r.version)
                    for r in clean.records]
        for index in range(len(pristine)):
            with open(path, "wb") as fobj:
                fobj.write(pristine)
            flip_bit(path, index, index % 8)
            result = replay_wal(directory, 0, truncate_torn=False)
            # Outcomes allowed: an error, or a clean prefix/subset of the
            # original records — never a *different* record.
            recovered = [(r.seqno, r.op, r.graph_uri, r.triple_line,
                          r.version) for r in result.records]
            for entry in recovered:
                assert entry in baseline, (index, entry)


class TestFailStop:
    class ExplodingIO(StorageIO):
        def __init__(self, after):
            self.after = after
            self.writes = 0

        def _write(self, fobj, data, path):
            self.writes += 1
            if self.writes > self.after:
                raise OSError("disk on fire")
            super()._write(fobj, data, path)

    def test_append_failure_latches(self, tmp_path):
        io = self.ExplodingIO(after=3)
        wal = WriteAheadLog(io, str(tmp_path), 1, sync_every=0)
        wal.append(OP_ADD, "urn:g", LINE, 1)
        wal.append(OP_ADD, "urn:g", LINE, 2)
        with pytest.raises(OSError):
            wal.append(OP_ADD, "urn:g", LINE, 3)
        with pytest.raises(StorageError):
            wal.append(OP_ADD, "urn:g", LINE, 4)
        wal.close()  # must not raise

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(StorageIO(), str(tmp_path), 1)
        wal.append(OP_ADD, "urn:g", LINE, 1)
        wal.close()
        with pytest.raises(StorageError):
            wal.append(OP_ADD, "urn:g", LINE, 2)
