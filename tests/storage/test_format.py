"""Unit and property tests for the storage binary codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.terms import BlankNode, Literal, URIRef
from repro.storage.format import (FormatError, decode_sorted_triples,
                                  decode_term, decode_varint,
                                  decode_varint_stream, decode_varstr,
                                  encode_sorted_triples, encode_term,
                                  encode_varint, encode_varstr,
                                  frame_section, iter_sections,
                                  read_section)


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 32,
                                       2 ** 63 - 1])
    def test_round_trip(self, value):
        data = encode_varint(value)
        decoded, pos = decode_varint(data)
        assert decoded == value
        assert pos == len(data)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_torn_varint_flagged(self):
        data = encode_varint(300)[:1]  # continuation bit set, then EOF
        with pytest.raises(FormatError) as exc_info:
            decode_varint(data)
        assert exc_info.value.torn

    def test_overwide_varint_rejected(self):
        with pytest.raises(FormatError):
            decode_varint(b"\xff" * 10 + b"\x01")

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 62),
                    max_size=50))
    def test_stream_decode_matches_one_by_one(self, values):
        data = b"".join(encode_varint(v) for v in values)
        assert decode_varint_stream(data) == values
        assert decode_varint_stream(data, expect=len(values)) == values

    def test_stream_count_mismatch(self):
        with pytest.raises(FormatError):
            decode_varint_stream(encode_varint(7), expect=2)

    def test_stream_torn_tail(self):
        with pytest.raises(FormatError) as exc_info:
            decode_varint_stream(b"\x80")
        assert exc_info.value.torn


class TestVarstr:
    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=80))
    def test_round_trip(self, text):
        data = encode_varstr(text)
        decoded, pos = decode_varstr(data)
        assert decoded == text
        assert pos == len(data)

    def test_invalid_utf8_rejected(self):
        data = encode_varint(2) + b"\xff\xfe"
        with pytest.raises(FormatError):
            decode_varstr(data)


class TestSections:
    def test_round_trip(self):
        data = frame_section(b"A", b"hello") + frame_section(b"B", b"")
        tag, payload, pos = read_section(data, 0)
        assert (tag, payload) == (b"A", b"hello")
        tag, payload, pos = read_section(data, pos)
        assert (tag, payload) == (b"B", b"")
        assert pos == len(data)
        assert [t for t, _ in iter_sections(data)] == [b"A", b"B"]

    def test_checksum_mismatch_not_torn(self):
        data = bytearray(frame_section(b"A", b"payload bytes"))
        data[7] ^= 0x40
        with pytest.raises(FormatError) as exc_info:
            read_section(bytes(data), 0)
        assert not exc_info.value.torn

    @pytest.mark.parametrize("cut", [1, 4, 8, -1])
    def test_truncation_is_torn(self, cut):
        data = frame_section(b"A", b"payload bytes")
        with pytest.raises(FormatError) as exc_info:
            read_section(data[:cut if cut > 0 else len(data) - 1], 0)
        assert exc_info.value.torn


_term = st.one_of(
    st.text(max_size=40).map(lambda t: URIRef("http://x/" + t)),
    st.text(alphabet="ab0", min_size=1, max_size=10).map(BlankNode),
    st.text(max_size=60).map(Literal),
    st.text(max_size=30).map(lambda t: Literal(t, language="en")),
    st.text(max_size=30).map(
        lambda t: Literal(t, datatype="http://x/dt")),
)


class TestTermCodec:
    @settings(max_examples=120, deadline=None)
    @given(_term)
    def test_round_trip(self, term):
        out = bytearray()
        encode_term(out, term)
        decoded, pos = decode_term(bytes(out), 0)
        assert decoded == term
        assert pos == len(out)
        assert type(decoded) is type(term)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FormatError):
            decode_term(b"\x00\x00", 0)


def _columns(triples):
    run = sorted(triples)
    return ([t[0] for t in run], [t[1] for t in run],
            [t[2] for t in run])


class TestTripleRuns:
    @settings(max_examples=80, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 500), st.integers(0, 500),
                             st.integers(0, 500)), max_size=120))
    def test_round_trip(self, triples):
        a, b, c = _columns(triples)
        payload = encode_sorted_triples(a, b, c)
        ra, rb, rc = decode_sorted_triples(payload, len(a))
        assert (ra.tolist(), rb.tolist(), rc.tolist()) == (a, b, c)

    def test_wide_ids_round_trip(self):
        # values crossing each of the 1/2/4/8-byte width tiers
        a = [0, 200, 70_000, 5_000_000_000]
        b = [5_000_000_001, 3, 70_001, 255]
        c = [65_535, 65_536, 1, 0]
        ra, rb, rc = decode_sorted_triples(
            encode_sorted_triples(a, b, c), 4)
        assert (ra.tolist(), rb.tolist(), rc.tolist()) == (a, b, c)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            encode_sorted_triples([2, 1], [0, 0], [0, 0])
        with pytest.raises(ValueError):
            encode_sorted_triples([1, 1], [0, -4], [0, 0])

    def test_length_mismatch_rejected(self):
        payload = encode_sorted_triples([1, 2], [3, 4], [5, 6])
        with pytest.raises(FormatError):
            decode_sorted_triples(payload, 3)
        with pytest.raises(FormatError) as exc_info:
            decode_sorted_triples(payload[:-1], 2)
        assert exc_info.value.torn

    def test_impossible_width_rejected(self):
        with pytest.raises(FormatError):
            decode_sorted_triples(b"\x03\x01\x01", 0)

    def test_delta_encoding_is_compact(self):
        # A dense sorted run should cost ~3 bytes per triple, far below
        # naive 3x fixed-width-64 encodings.
        run = sorted((s, p, s + p) for s in range(100) for p in range(5))
        a, b, c = _columns(run)
        payload = encode_sorted_triples(a, b, c)
        assert len(payload) < len(run) * 6
