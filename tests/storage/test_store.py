"""GraphStore lifecycle: recovery, checkpointing, degradation, coherence."""

import os

import pytest

from repro.rdf.dataset import Dataset
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql import Engine
from repro.sparql.errors import (CorruptSnapshotError, EndpointError,
                                 StorageError, WalTruncatedError,
                                 classify_error, is_retryable)
from repro.storage import GraphStore
from repro.storage.fileio import corrupt_bytes, flip_bit, truncate_file
from repro.storage.snapshot import list_snapshots
from repro.storage.wal import list_wal_segments

URI = "http://example.org/g"


def triple(i):
    return (URIRef("http://x/s%d" % (i % 11)),
            URIRef("http://x/p%d" % (i % 4)),
            Literal("v%d" % i))


def populate(store, count, start=0):
    graph = store.graph(URI)
    for i in range(start, start + count):
        graph.add(*triple(i))
    return graph


class TestLifecycle:
    def test_reopen_from_wal_only(self, tmp_path):
        home = str(tmp_path)
        store = GraphStore(home, sync_every=1)
        store.open()
        graph = populate(store, 30)
        version = graph.version
        bag = set(graph.triples())
        store.close()

        store2 = GraphStore(home)
        report = store2.open()
        assert report.snapshot_generation is None
        assert report.replayed_records == 30
        recovered = store2.graph(URI)
        assert set(recovered.triples()) == bag
        assert recovered.version == version
        store2.close()

    def test_reopen_from_snapshot_plus_tail(self, tmp_path):
        home = str(tmp_path)
        with GraphStore(home, sync_every=1) as store:
            graph = populate(store, 20)
            store.checkpoint()
            graph.add(*triple(100))
            graph.remove(*triple(3))
            bag = set(graph.triples())
            version = graph.version

        with GraphStore(home) as store2:
            report = None
            recovered = store2.graph(URI)
            assert set(recovered.triples()) == bag
            assert recovered.version == version
            assert len(recovered) == 20

    def test_mutation_on_closed_store_fails_loudly(self, tmp_path):
        store = GraphStore(str(tmp_path))
        store.open()
        graph = populate(store, 2)
        store.close()
        with pytest.raises(StorageError):
            graph.add(*triple(50))
        # and the in-memory graph did not silently diverge
        assert len(graph) == 2

    def test_wal_failure_leaves_memory_and_disk_agreeing(self, tmp_path):
        from repro.storage.fileio import StorageIO

        class Exploding(StorageIO):
            def __init__(self):
                self.fail = False

            def _write(self, fobj, data, path):
                if self.fail:
                    raise OSError("disk gone")
                super()._write(fobj, data, path)

        io = Exploding()
        home = str(tmp_path)
        store = GraphStore(home, io=io, sync_every=1)
        store.open()
        graph = populate(store, 5)
        io.fail = True
        with pytest.raises(StorageError):
            graph.add(*triple(99))
        assert len(graph) == 5          # log-before-mutate held
        io.fail = False
        with pytest.raises(StorageError):
            graph.add(*triple(99))      # fail-stop: still refused
        store.close()

        with GraphStore(home) as store2:
            assert set(store2.graph(URI).triples()) \
                == set(graph.triples())

    def test_checkpoint_prunes_generations_and_segments(self, tmp_path):
        home = str(tmp_path)
        with GraphStore(home, sync_every=1, keep_generations=2) as store:
            populate(store, 10)
            for round_number in range(4):
                populate(store, 5, start=100 * (round_number + 1))
                store.checkpoint()
            snaps = list_snapshots(home)
            assert len(snaps) == 2
            assert snaps[-1][0] == 4
            # old WAL segments the retained snapshots cover are gone
            assert len(list_wal_segments(home)) <= 3

    def test_attach_and_checkpoint_adopts_existing_graphs(self, tmp_path):
        home = str(tmp_path)
        dictionary = TermDictionary()
        graph = Graph(URI, dictionary=dictionary)
        for i in range(12):
            graph.add(*triple(i))
        store = GraphStore(home)
        store.open()
        store.attach(graph)
        assert store.dictionary is dictionary
        store.checkpoint()           # existing contents become durable
        graph.add(*triple(50))       # teed from now on
        store.close()

        with GraphStore(home) as store2:
            assert set(store2.graph(URI).triples()) == set(graph.triples())

    def test_attach_rejects_foreign_dictionary_when_not_fresh(self, tmp_path):
        store = GraphStore(str(tmp_path))
        store.open()
        populate(store, 1)
        stranger = Graph("urn:other", dictionary=TermDictionary())
        with pytest.raises(StorageError):
            store.attach(stranger)
        store.close()


class TestDegradation:
    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        home = str(tmp_path)
        with GraphStore(home, sync_every=1) as store:
            graph = populate(store, 15)
            store.checkpoint()
            graph.add(*triple(200))
            store.checkpoint()
            bag = set(graph.triples())
        newest = list_snapshots(home)[-1][1]
        flip_bit(newest, os.path.getsize(newest) // 2)

        store2 = GraphStore(home)
        report = store2.open()
        assert len(report.corrupt_snapshots) == 1
        assert report.snapshot_generation == 1
        # the WAL tail past generation 1 replays, so nothing was lost
        assert set(store2.graph(URI).triples()) == bag
        assert os.path.exists(newest + ".corrupt")
        store2.close()

        # quarantine means the next open is clean
        with GraphStore(home) as store3:
            assert set(store3.graph(URI).triples()) == bag

    def test_all_snapshots_corrupt_fails_safe(self, tmp_path):
        # Retention covers falling back ONE generation with zero loss;
        # losing every retained snapshot leaves WAL records that nothing
        # vouches for — recovery must refuse, never serve the partial
        # (here: empty) graph the surviving WAL tail alone describes.
        home = str(tmp_path)
        with GraphStore(home, sync_every=1) as store:
            populate(store, 8)
            store.checkpoint()
        for _, path in list_snapshots(home):
            truncate_file(path, 10)
        store2 = GraphStore(home)
        with pytest.raises(StorageError):
            store2.open()

    def test_mid_log_hole_surfaces_classified_error(self, tmp_path):
        home = str(tmp_path)
        with GraphStore(home, sync_every=1) as store:
            populate(store, 20)
        path = list_wal_segments(home)[0][1]
        corrupt_bytes(path, os.path.getsize(path) // 2, b"\xde\xad" * 6)
        store2 = GraphStore(home)
        with pytest.raises(WalTruncatedError) as exc_info:
            store2.open()
        assert 0 < exc_info.value.recovered_seqno < 20
        assert not exc_info.value.retryable

    def test_torn_tail_recovers_silently(self, tmp_path):
        home = str(tmp_path)
        with GraphStore(home, sync_every=1) as store:
            populate(store, 10)
        path = list_wal_segments(home)[-1][1]
        truncate_file(path, os.path.getsize(path) - 4)
        store2 = GraphStore(home)
        report = store2.open()
        assert report.truncated_bytes > 0
        assert len(store2.graph(URI)) == 9
        store2.close()


class TestCacheCoherence:
    def build_engine(self, store):
        dataset = Dataset()
        dataset.add_graph(store.graph(URI))
        return Engine(dataset)

    def test_fingerprint_survives_clean_reopen(self, tmp_path):
        home = str(tmp_path)
        store = GraphStore(home, sync_every=1)
        store.open()
        populate(store, 25)
        before = self.build_engine(store)._fingerprint()
        store.close()

        store2 = GraphStore(home)
        store2.open()
        after = self.build_engine(store2)._fingerprint()
        assert after == before
        store2.close()

    def test_fingerprint_diverges_after_lossy_recovery(self, tmp_path):
        # A torn tail rolls back acknowledged state; a ResultCache keyed
        # on the pre-crash fingerprint must NOT hit on the recovered
        # store, or it would serve rows for data that no longer exists.
        home = str(tmp_path)
        store = GraphStore(home, sync_every=1)
        store.open()
        populate(store, 10)
        lossy = self.build_engine(store)._fingerprint()
        store.close()

        path = list_wal_segments(home)[-1][1]
        truncate_file(path, os.path.getsize(path) - 4)
        store2 = GraphStore(home)
        report = store2.open()
        assert report.truncated_bytes > 0
        recovered = self.build_engine(store2)._fingerprint()
        assert recovered != lossy
        # ... and it differs from every fingerprint the lost suffix of
        # the history could have produced (version strictly larger).
        assert store2.graph(URI).version > 10
        store2.close()


class TestErrorClassification:
    def test_oserror_maps_to_storage_error(self):
        classified = classify_error(OSError("no space left on device"))
        assert isinstance(classified, StorageError)
        assert not is_retryable(classified)

    def test_taxonomy_shape(self):
        assert issubclass(StorageError, EndpointError)
        assert issubclass(CorruptSnapshotError, StorageError)
        assert issubclass(WalTruncatedError, StorageError)
        assert StorageError.retryable is False
        err = WalTruncatedError("hole", recovered_seqno=41)
        assert classify_error(err) is err
        assert err.recovered_seqno == 41
