"""Restart-without-rebuild: checkpoint, reopen in a fresh process.

The parent process loads the benchmark dataset, attaches it to a
:class:`GraphStore`, checkpoints, and runs the case-study queries.  A
*subprocess* — sharing no interpreter state, dictionary ids, or hash
seed with the parent — then reopens the store directory from disk alone
and must produce bag-identical answers.  This is the deployment story:
a serving-tier restart resumes from the snapshot instead of re-parsing
N-Triples sources.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.data import DBLP_URI, DBPEDIA_URI
from repro.data.loader import build_dataset
from repro.sparql import Engine
from repro.storage import GraphStore
from repro.workload.case_studies import CASE_STUDIES

SCALE = 0.02

CHILD = r"""
import json, sys
from repro.rdf.dataset import Dataset
from repro.sparql import Engine
from repro.storage import GraphStore
from repro.workload.case_studies import CASE_STUDIES

store = GraphStore(sys.argv[1])
report = store.open()
assert report.snapshot_generation is not None, "no snapshot on disk"
assert report.replayed_records == 0, "checkpoint left a WAL tail"
dataset = Dataset()
for graph in store.graphs().values():
    dataset.add_graph(graph)
engine = Engine(dataset)
bags = {}
for cs in CASE_STUDIES:
    result = engine.query(cs.expert_sparql,
                          default_graph_uri=cs.graph_uri)
    bags[cs.key] = sorted(
        sorted((var, repr(term))
               for var, term in zip(result.variables, row))
        for row in result.rows)
store.close()
json.dump(bags, sys.stdout)
"""


def named_bag(result):
    return sorted(
        sorted((var, repr(term))
               for var, term in zip(result.variables, row))
        for row in result.rows)


def test_subprocess_reopen_answers_identically(tmp_path):
    dataset = build_dataset(scale=SCALE, include_yago=False,
                            use_cache=False)
    home = str(tmp_path / "store")
    store = GraphStore(home)
    store.open()
    store.attach(list(dataset))
    store.checkpoint()
    engine = Engine(dataset)
    expected = {
        cs.key: named_bag(engine.query(cs.expert_sparql,
                                       default_graph_uri=cs.graph_uri))
        for cs in CASE_STUDIES}
    store.close()
    for graph in dataset:
        graph._store = None       # detach: the dataset fixture is shared

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src
    # a different hash seed proves the on-disk format, not dict order,
    # carries the answers across the restart
    env["PYTHONHASHSEED"] = "271828"
    completed = subprocess.run(
        [sys.executable, "-c", CHILD, home], env=env,
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    child_bags = json.loads(completed.stdout)

    normalized = {key: [list(map(list, row)) for row in bag]
                  for key, bag in expected.items()}
    assert child_bags == normalized
    assert any(normalized.values())    # the comparison saw real rows
