"""Snapshot write/load round trips, corruption detection, fallback fuel."""

import os

import pytest

from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, Literal, URIRef
from repro.sparql.errors import CorruptSnapshotError
from repro.storage.fileio import StorageIO, bit_flip_points, flip_bit, \
    truncate_file
from repro.storage.snapshot import (SNAPSHOT_MAGIC, list_snapshots,
                                    load_snapshot, snapshot_path,
                                    write_snapshot)


def build_graphs(dictionary):
    g1 = Graph("urn:g1", dictionary=dictionary)
    for i in range(40):
        g1.add(URIRef("http://x/s%d" % (i % 7)),
               URIRef("http://x/p%d" % (i % 3)),
               Literal("value %d with \"quotes\" and \\slashes\\ \n" % i))
    g1.add(BlankNode("b1"), URIRef("http://x/p0"),
           Literal("typed", datatype="http://x/dt"))
    g1.add(BlankNode("b1"), URIRef("http://x/p0"),
           Literal("tagged", language="en"))
    g2 = Graph("urn:g2", dictionary=dictionary)
    g2.add(URIRef("http://x/a"), URIRef("http://x/b"), URIRef("http://x/c"))
    g1.version = 123
    g2.version = 7
    return [g1, g2]


def write(tmp_path, graphs, dictionary, generation=1, last_seqno=55):
    return write_snapshot(StorageIO(), str(tmp_path), generation, graphs,
                          dictionary, last_seqno)


class TestRoundTrip:
    def test_fresh_dictionary(self, tmp_path):
        dictionary = TermDictionary()
        graphs = build_graphs(dictionary)
        path = write(tmp_path, graphs, dictionary)
        assert os.path.basename(path) == "snapshot-000001.snap"

        target = TermDictionary()
        loaded = load_snapshot(path, target)
        assert loaded.generation == 1
        assert loaded.last_seqno == 55
        assert sorted(g.uri for g in loaded.graphs) == ["urn:g1", "urn:g2"]
        by_uri = {g.uri: g for g in loaded.graphs}
        for original in graphs:
            recovered = by_uri[original.uri]
            assert len(recovered) == len(original)
            assert recovered.version == original.version
            assert set(recovered.triples()) == set(original.triples())

    def test_load_into_populated_dictionary_remaps(self, tmp_path):
        dictionary = TermDictionary()
        graphs = build_graphs(dictionary)
        path = write(tmp_path, graphs, dictionary)

        target = TermDictionary()
        # Pre-intern unrelated terms so snapshot ids cannot be identity.
        for i in range(17):
            target.encode(URIRef("http://elsewhere/%d" % i))
        loaded = load_snapshot(path, target)
        by_uri = {g.uri: g for g in loaded.graphs}
        for original in graphs:
            assert set(by_uri[original.uri].triples()) \
                == set(original.triples())

    def test_recovered_indexes_answer_patterns(self, tmp_path):
        dictionary = TermDictionary()
        graphs = build_graphs(dictionary)
        path = write(tmp_path, graphs, dictionary)
        target = TermDictionary()
        loaded = load_snapshot(path, target)
        g1 = {g.uri: g for g in loaded.graphs}["urn:g1"]
        s = URIRef("http://x/s1")
        p = URIRef("http://x/p1")
        original = {g.uri: g for g in graphs}["urn:g1"]
        assert set(g1.triples(s, None, None)) \
            == set(original.triples(s, None, None))
        assert set(g1.triples(None, p, None)) \
            == set(original.triples(None, p, None))
        assert g1.count(None, p, None) == original.count(None, p, None)

    def test_load_into_overlapping_dictionary_resorts(self, tmp_path):
        # A remap that is NOT order-preserving: pre-intern some of the
        # snapshot's own terms in a scrambled order, so the remapped id
        # columns would be unsorted without the loader's re-sort.
        dictionary = TermDictionary()
        graphs = build_graphs(dictionary)
        path = write(tmp_path, graphs, dictionary)

        target = TermDictionary()
        for tid in reversed(range(0, len(dictionary), 3)):
            target.encode(dictionary.decode(tid))
        loaded = load_snapshot(path, target)
        by_uri = {g.uri: g for g in loaded.graphs}
        for original in graphs:
            recovered = by_uri[original.uri]
            assert set(recovered.triples()) == set(original.triples())
            assert len(recovered) == len(original)

    def test_empty_store_snapshot(self, tmp_path):
        dictionary = TermDictionary()
        path = write(tmp_path, [], dictionary, last_seqno=0)
        loaded = load_snapshot(path, TermDictionary())
        assert loaded.graphs == []


class TestDeferredMaterialization:
    """Snapshot graphs build their nested indexes on first touch."""

    def load_g1(self, tmp_path):
        dictionary = TermDictionary()
        graphs = build_graphs(dictionary)
        path = write(tmp_path, graphs, dictionary)
        loaded = load_snapshot(path, TermDictionary())
        original = {g.uri: g for g in graphs}["urn:g1"]
        recovered = {g.uri: g for g in loaded.graphs}["urn:g1"]
        return original, recovered

    def test_load_builds_no_index(self, tmp_path):
        _, recovered = self.load_g1(tmp_path)
        assert recovered.indexes_materialized == 0
        for name in ("_spo", "_pos", "_osp"):
            assert name not in recovered.__dict__
        # len comes from the stored size — still nothing built.
        assert len(recovered) == 42
        assert recovered.indexes_materialized == 0

    def test_query_builds_only_the_index_it_probes(self, tmp_path):
        original, recovered = self.load_g1(tmp_path)
        p = URIRef("http://x/p1")
        assert recovered.count(None, p, None) == original.count(None, p, None)
        assert recovered.indexes_materialized == 1
        assert "_pos" in recovered.__dict__
        assert "_spo" not in recovered.__dict__
        # Touching the rest completes the set, exactly once each.
        assert set(recovered.triples()) == set(original.triples())
        assert set(recovered.triples(None, None,
                                     Literal("tagged", language="en"))) \
            == set(original.triples(None, None,
                                    Literal("tagged", language="en")))
        assert recovered.indexes_materialized == 3

    def test_mutation_materializes_and_stays_consistent(self, tmp_path):
        original, recovered = self.load_g1(tmp_path)
        s, p, o = (URIRef("http://new/s"), URIRef("http://new/p"),
                   URIRef("http://new/o"))
        assert recovered.add(s, p, o)
        assert recovered.indexes_materialized == 3
        assert (s, p, o) in recovered
        assert recovered.remove(s, p, o)
        assert set(recovered.triples()) == set(original.triples())


class TestListing:
    def test_ordering_and_ignoring_noise(self, tmp_path):
        dictionary = TermDictionary()
        write(tmp_path, [], dictionary, generation=3)
        write(tmp_path, [], dictionary, generation=1)
        (tmp_path / "snapshot-000002.snap.corrupt").write_bytes(b"x")
        (tmp_path / "notes.txt").write_bytes(b"x")
        generations = [g for g, _ in list_snapshots(str(tmp_path))]
        assert generations == [1, 3]


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CorruptSnapshotError):
            load_snapshot(str(tmp_path / "nope.snap"), TermDictionary())

    def test_bad_magic(self, tmp_path):
        dictionary = TermDictionary()
        path = write(tmp_path, build_graphs(dictionary), dictionary)
        flip_bit(path, 0)
        with pytest.raises(CorruptSnapshotError):
            load_snapshot(path, TermDictionary())

    def test_bit_flip_sweep_never_loads_wrong_data(self, tmp_path):
        dictionary = TermDictionary()
        graphs = build_graphs(dictionary)
        path = write(tmp_path, graphs, dictionary)
        pristine = open(path, "rb").read()
        expected = {g.uri: set(g.triples()) for g in graphs}
        for byte_index, bit in bit_flip_points(len(pristine), 200, seed=1):
            with open(path, "wb") as fobj:
                fobj.write(pristine)
            flip_bit(path, byte_index, bit)
            try:
                loaded = load_snapshot(path, TermDictionary())
            except CorruptSnapshotError:
                continue
            # A flip that survives validation must be semantically inert
            # (it can only live in dead bytes — there are none framed).
            for g in loaded.graphs:
                assert set(g.triples()) == expected[g.uri], \
                    (byte_index, bit)

    def test_every_truncation_is_rejected(self, tmp_path):
        dictionary = TermDictionary()
        path = write(tmp_path, build_graphs(dictionary), dictionary)
        pristine = open(path, "rb").read()
        for cut in range(0, len(pristine), 7):
            with open(path, "wb") as fobj:
                fobj.write(pristine[:cut])
            with pytest.raises(CorruptSnapshotError):
                load_snapshot(path, TermDictionary())

    def test_truncated_tail_is_rejected(self, tmp_path):
        dictionary = TermDictionary()
        path = write(tmp_path, build_graphs(dictionary), dictionary)
        truncate_file(path, os.path.getsize(path) - 1)
        with pytest.raises(CorruptSnapshotError):
            load_snapshot(path, TermDictionary())

    def test_snapshot_path_format(self, tmp_path):
        assert snapshot_path(str(tmp_path), 42).endswith(
            "snapshot-000042.snap")
        assert SNAPSHOT_MAGIC == b"RPRSNAP1"
