"""Crash matrix: kill the store at every IO boundary, prove recovery.

Two tiers, both deterministic and ``PYTHONHASHSEED``-independent:

* **Byte-level, exhaustive** — a tiny workload (open, adds, checkpoint,
  more mutations, close) is recorded once through :class:`CrashingIO`,
  then re-run killing the process at *every byte boundary of every
  write* and before every rename/remove/truncate/fsync.  Each recovered
  store must hold exactly a prefix of the mutation sequence — never a
  mixed, reordered, or invented state — and must remain writable.

* **Case-study, op-level** — the paper's three case studies run over a
  store-backed dataset.  The workload (attach, checkpoint, a mutation
  sequence that changes query answers) is crashed at every mutating op
  (sampled write partials), recovered with the production IO, and the
  recovered graphs are queried across all four execution planes
  (reference, materialized, streaming, vectorized).  All planes must be
  bag-identical, and the common bag must equal one of the pre-/post-
  mutation states of the sequence — bag-identity to a state that
  *existed*, which is the ISSUE's recovery contract.
"""

import itertools

import pytest

from repro.data import DBLP_URI, DBPEDIA_URI
from repro.data.loader import build_dataset
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql import Engine
from repro.storage import GraphStore
from repro.storage.fileio import CrashingIO, CrashPoint, SimulatedCrash, \
    StorageIO
from repro.workload.case_studies import CASE_STUDIES

URI = "http://example.org/g"


def named_bag(result):
    """Order-free, variable-name-keyed bag of a result set."""
    return sorted(
        tuple(sorted((var, repr(term))
                     for var, term in zip(result.variables, row)))
        for row in result.rows)


# ----------------------------------------------------------------------
# Tier 1: exhaustive byte-level matrix on a tiny workload
# ----------------------------------------------------------------------
TRIPLES = [(URIRef("http://x/s%d" % i),
            URIRef("http://x/p%d" % (i % 2)),
            Literal("value %d" % i)) for i in range(6)]

# (op, triple) mutation sequence; the checkpoint sits between them.
BEFORE_CHECKPOINT = [("add", t) for t in TRIPLES[:4]]
AFTER_CHECKPOINT = [("add", TRIPLES[4]), ("remove", TRIPLES[1]),
                    ("add", TRIPLES[5])]


def tiny_workload(home, io):
    store = GraphStore(home, io=io, sync_every=1)
    store.open()
    graph = store.graph(URI)
    for op, t in BEFORE_CHECKPOINT:
        graph.add(*t) if op == "add" else graph.remove(*t)
    store.checkpoint()
    for op, t in AFTER_CHECKPOINT:
        graph.add(*t) if op == "add" else graph.remove(*t)
    store.close()


def prefix_states():
    """Every bag the mutation sequence ever passes through, in order."""
    states = [frozenset()]
    current = set()
    for op, t in BEFORE_CHECKPOINT + AFTER_CHECKPOINT:
        current.add(t) if op == "add" else current.discard(t)
        states.append(frozenset(current))
    return states


def recover(home):
    store = GraphStore(home)
    store.open()
    graph = store.graphs().get(URI)
    bag = frozenset(graph.triples()) if graph is not None else frozenset()
    return store, bag


class TestByteLevelMatrix:
    def test_every_crash_point_recovers_to_a_prefix_state(self, tmp_path):
        recorder = CrashingIO()
        tiny_workload(str(tmp_path / "record"), recorder)
        assert len(recorder.ops) > 15          # the seam is actually hot
        allowed = prefix_states()
        tested = 0
        for index, (kind, _path, size) in enumerate(recorder.ops):
            partials = range(size + 1) if kind == "write" else (0,)
            for partial in partials:
                home = str(tmp_path / ("crash-%d-%d" % (index, partial)))
                with pytest.raises(SimulatedCrash):
                    tiny_workload(home,
                                  CrashingIO(CrashPoint(index, partial)))
                store, bag = recover(home)
                assert bag in allowed, (index, partial, sorted(bag))
                # recovery is idempotent *and* leaves a live store: the
                # next mutation must log and survive another reopen
                probe = (URIRef("http://x/probe"),
                         URIRef("http://x/p"), Literal("alive"))
                store.graph(URI).add(*probe)
                store.close()
                store2, bag2 = recover(home)
                assert bag2 == bag | {probe}, (index, partial)
                store2.close()
                tested += 1
        assert tested > 300                    # genuinely a matrix

    def test_crash_point_past_the_workload_never_fires(self, tmp_path):
        io = CrashingIO(CrashPoint(10 ** 6, 0))
        tiny_workload(str(tmp_path), io)
        assert not io.crashed


# ----------------------------------------------------------------------
# Tier 2: case-study matrix across all four execution planes
# ----------------------------------------------------------------------
SCALE = 0.02
STARRING = URIRef("http://dbpedia.org/property/starring")
GENRE = URIRef("http://dbpedia.org/ontology/genre")


@pytest.fixture(scope="module")
def dataset():
    # use_cache=False: this suite mutates the graphs between crash runs
    # and must not leak into the memoized datasets other suites share.
    return build_dataset(scale=SCALE, include_yago=False, use_cache=False)


@pytest.fixture(scope="module")
def mutations(dataset):
    """A deterministic mutation sequence that changes query answers."""
    dbpedia = dataset.graph(DBPEDIA_URI)
    dblp = dataset.graph(DBLP_URI)
    starring = min(dbpedia.triples(None, STARRING, None), key=repr)
    dblp_triple = min(itertools.islice(dblp.triples(), 64), key=repr)
    return [
        ("remove", DBPEDIA_URI, starring),
        ("add", DBPEDIA_URI, (starring[0], GENRE,
                              URIRef("http://dbpedia.org/resource/"
                                     "Crash_test_drama"))),
        ("remove", DBLP_URI, dblp_triple),
    ]


def apply_mutation(dataset, mutation):
    op, uri, t = mutation
    graph = dataset.graph(uri)
    graph.add(*t) if op == "add" else graph.remove(*t)


def revert_all(dataset, mutations):
    for graph in dataset:
        graph._store = None
    for op, uri, t in reversed(mutations):
        graph = dataset.graph(uri)
        graph.remove(*t) if op == "add" else graph.add(*t)


def case_study_bags(dataset):
    planes = {
        "reference": Engine(dataset, columnar=False),
        "materialized": Engine(dataset, streaming=False, vectorize=False),
        "streaming": Engine(dataset, streaming=True, vectorize=False),
        "vectorized": Engine(dataset, streaming=True, vectorize=True),
    }
    bags = {}
    for cs in CASE_STUDIES:
        per_plane = {
            name: named_bag(engine.query(cs.expert_sparql,
                                         default_graph_uri=cs.graph_uri))
            for name, engine in planes.items()}
        distinct = {tuple(map(tuple, bag)) for bag in per_plane.values()}
        assert len(distinct) == 1, \
            "planes disagree on %s" % cs.key
        bags[cs.key] = per_plane["reference"]
    return bags


def store_workload(home, io, dataset, mutations):
    store = GraphStore(home, io=io, sync_every=1)
    store.open()
    store.attach(list(dataset))
    store.checkpoint()
    for mutation in mutations:
        apply_mutation(dataset, mutation)
    store.close()


@pytest.fixture(scope="module")
def allowed_states(dataset, mutations):
    """Reference bags for the empty store and every mutation prefix."""
    empty = Dataset()
    shared = dataset.graph(DBPEDIA_URI).dictionary
    for uri in (DBPEDIA_URI, DBLP_URI):
        empty.add_graph(Graph(uri, dictionary=shared))
    states = [case_study_bags(empty), case_study_bags(dataset)]
    for index, mutation in enumerate(mutations):
        apply_mutation(dataset, mutation)
        states.append(case_study_bags(dataset))
    revert_all(dataset, mutations)
    # the sequence is meaningful only if it actually moves the answers
    assert states[1] != states[-1]
    return states


class TestCaseStudyMatrix:
    def test_recovery_is_bag_identical_on_every_plane(
            self, tmp_path, dataset, mutations, allowed_states):
        recorder = CrashingIO()
        store_workload(str(tmp_path / "record"), recorder, dataset,
                       mutations)
        revert_all(dataset, mutations)

        points = []
        for index, (kind, _path, size) in enumerate(recorder.ops):
            points.append(CrashPoint(index, 0))
            if kind == "write" and size > 1:
                points.append(CrashPoint(index, size // 2))
        # keep the matrix affordable: every op once, plus mid-write
        # partials; the byte-exhaustive tier already covers the rest
        assert len(points) >= 20

        for point in points:
            home = str(tmp_path / ("crash-%d-%d"
                                   % (point.op_index, point.partial)))
            with pytest.raises(SimulatedCrash):
                store_workload(home, CrashingIO(point), dataset, mutations)
            revert_all(dataset, mutations)

            store = GraphStore(home, io=StorageIO())
            store.open()
            recovered = Dataset()
            for uri in (DBPEDIA_URI, DBLP_URI):
                graph = store.graphs().get(uri)
                if graph is None:
                    graph = Graph(uri, dictionary=store.dictionary)
                recovered.add_graph(graph)
            bags = case_study_bags(recovered)   # asserts 4-plane identity
            assert bags in allowed_states, point
            store.close()

        # the shared dataset came back pristine for the other suites
        assert case_study_bags(dataset) == allowed_states[1]
