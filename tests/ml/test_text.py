"""Tests for text preprocessing and TF-IDF."""

import numpy as np
import pytest

from repro.ml import STOPWORDS, TfidfVectorizer, clean_text, tokenize


class TestCleanTokenize:
    def test_clean_strips_punctuation(self):
        assert clean_text("Hello, World!") == "hello  world "

    def test_tokenize_removes_stopwords(self):
        tokens = tokenize("the quick brown fox and the dog")
        assert "the" not in tokens and "and" not in tokens
        assert "quick" in tokens

    def test_tokenize_min_length(self):
        assert "ab" in tokenize("ab x", min_length=2)
        assert "x" not in tokenize("ab x", min_length=2)

    def test_custom_stopwords(self):
        tokens = tokenize("alpha beta", stopwords={"alpha"})
        assert tokens == ["beta"]

    def test_stopword_list_sane(self):
        assert "the" in STOPWORDS and "query" not in STOPWORDS


class TestTfidf:
    DOCS = ["query optimization engine", "query engine plans",
            "neural network training", "training deep network"]

    def test_shape(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        assert matrix.shape[0] == 4
        assert matrix.shape[1] >= 6

    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_rare_terms_weighted_higher(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(self.DOCS)
        names = vectorizer.get_feature_names()
        idf = vectorizer.idf_
        # 'optimization' (1 doc) must out-weigh 'query' (2 docs)
        assert idf[names.index("optimization")] > idf[names.index("query")]

    def test_max_features_cap(self):
        vectorizer = TfidfVectorizer(max_features=3)
        vectorizer.fit(self.DOCS)
        assert len(vectorizer.vocabulary_) == 3

    def test_min_df_prunes_rare(self):
        vectorizer = TfidfVectorizer(min_df=2)
        vectorizer.fit(self.DOCS)
        assert "optimization" not in vectorizer.vocabulary_
        assert "query" in vectorizer.vocabulary_

    def test_max_df_prunes_common(self):
        docs = ["common alpha", "common beta", "common gamma"]
        vectorizer = TfidfVectorizer(max_df=0.5)
        vectorizer.fit(docs)
        assert "common" not in vectorizer.vocabulary_

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])

    def test_unknown_terms_ignored(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(self.DOCS)
        matrix = vectorizer.transform(["zebra zebra zebra"])
        assert np.all(matrix == 0)

    def test_sublinear_tf(self):
        plain = TfidfVectorizer()
        sub = TfidfVectorizer(sublinear_tf=True)
        docs = ["word word word word plans"]
        a = plain.fit_transform(docs)
        b = sub.fit_transform(docs)
        # sublinear damping reduces the dominant term's relative weight
        names = plain.get_feature_names()
        w = names.index("word")
        o = names.index("plans")
        assert b[0, w] / b[0, o] < a[0, w] / a[0, o]
