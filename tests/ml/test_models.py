"""Tests for the logistic regression, SVD, and TransE models."""

import numpy as np
import pytest

from repro.ml import (LogisticRegression, TransE, TruncatedSVD,
                      cross_val_score, evaluate_ranks, hits_at_n_score,
                      mr_score, mrr_score, top_terms_per_topic,
                      train_test_split_no_unseen)


def make_blobs(n=60, seed=0):
    rng = np.random.RandomState(seed)
    a = rng.normal(loc=(-2, 0), scale=0.5, size=(n // 2, 2))
    b = rng.normal(loc=(2, 0), scale=0.5, size=(n // 2, 2))
    features = np.vstack([a, b])
    labels = np.array(["a"] * (n // 2) + ["b"] * (n // 2))
    return features, labels


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self):
        features, labels = make_blobs()
        model = LogisticRegression(n_iterations=300).fit(features, labels)
        assert model.score(features, labels) >= 0.95

    def test_predict_proba_sums_to_one(self):
        features, labels = make_blobs()
        model = LogisticRegression().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_three_classes(self):
        rng = np.random.RandomState(1)
        features = np.vstack([rng.normal(loc=c, scale=0.3, size=(20, 2))
                              for c in ((-3, 0), (3, 0), (0, 3))])
        labels = np.repeat(["x", "y", "z"], 20)
        model = LogisticRegression(n_iterations=400).fit(features, labels)
        assert model.score(features, labels) >= 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_cross_val_score(self):
        features, labels = make_blobs()
        scores = cross_val_score(lambda: LogisticRegression(n_iterations=200),
                                 features, labels, cv=5)
        assert len(scores) == 5
        assert np.mean(scores) >= 0.9

    def test_cross_val_too_few_samples(self):
        with pytest.raises(ValueError):
            cross_val_score(LogisticRegression, np.zeros((3, 2)),
                            ["a", "b", "a"], cv=5)


class TestTruncatedSVD:
    def test_recovers_block_structure(self):
        # Two disjoint topic blocks.
        matrix = np.zeros((8, 6))
        matrix[:4, :3] = 1.0
        matrix[4:, 3:] = 1.0
        svd = TruncatedSVD(n_components=2).fit(matrix)
        names = ["t%d" % i for i in range(6)]
        topics = top_terms_per_topic(svd, names, n_terms=3)
        groups = [frozenset(t for t, _ in topic) for topic in topics]
        assert frozenset(["t0", "t1", "t2"]) in groups
        assert frozenset(["t3", "t4", "t5"]) in groups

    def test_transform_shape(self):
        matrix = np.random.RandomState(0).rand(10, 7)
        svd = TruncatedSVD(n_components=3)
        reduced = svd.fit_transform(matrix)
        assert reduced.shape == (10, 3)

    def test_components_capped_by_rank(self):
        matrix = np.random.RandomState(0).rand(3, 5)
        svd = TruncatedSVD(n_components=10).fit(matrix)
        assert svd.components_.shape[0] <= 2

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TruncatedSVD().transform(np.zeros((2, 2)))

    def test_singular_values_descending(self):
        matrix = np.random.RandomState(0).rand(10, 8)
        svd = TruncatedSVD(n_components=4).fit(matrix)
        values = svd.singular_values_
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))


def make_kg_triples(n_entities=40, n_triples=400, seed=0):
    rng = np.random.RandomState(seed)
    entities = ["e%d" % i for i in range(n_entities)]
    relations = ["r%d" % i for i in range(4)]
    triples = {(entities[rng.randint(n_entities)],
                relations[rng.randint(4)],
                entities[rng.randint(n_entities)])
               for _ in range(n_triples)}
    return sorted(triples)


class TestSplit:
    def test_no_unseen_entities(self):
        triples = make_kg_triples()
        train, test = train_test_split_no_unseen(triples, 30)
        train_entities = {t[0] for t in train} | {t[2] for t in train}
        train_relations = {t[1] for t in train}
        for s, p, o in test:
            assert s in train_entities and o in train_entities
            assert p in train_relations

    def test_partition(self):
        triples = make_kg_triples()
        train, test = train_test_split_no_unseen(triples, 30)
        assert len(train) + len(test) == len(triples)
        assert not set(train) & set(test)

    def test_requested_size_met_when_possible(self):
        triples = make_kg_triples()
        _, test = train_test_split_no_unseen(triples, 20)
        assert len(test) == 20


class TestTransE:
    @pytest.fixture(scope="class")
    def trained(self):
        triples = make_kg_triples()
        train, test = train_test_split_no_unseen(triples, 25)
        model = TransE(k=16, epochs=25, seed=0).fit(train + test)
        return model, train, test

    def test_loss_decreases(self, trained):
        model, _, _ = trained
        history = model.loss_history
        assert history[-1] < history[0]

    def test_embeddings_shapes(self, trained):
        model, _, _ = trained
        assert model.entity_embeddings.shape[1] == 16
        assert model.relation_embeddings.shape[1] == 16

    def test_score_prefers_true_triples(self, trained):
        model, train, _ = trained
        true_scores = model.score(train[:50])
        rng = np.random.RandomState(3)
        entities = list(model._index.entities)
        corrupted = [(s, p, entities[rng.randint(len(entities))])
                     for s, p, _ in train[:50]]
        fake_scores = model.score(corrupted)
        assert true_scores.mean() > fake_scores.mean()

    def test_rank_metrics(self, trained):
        model, train, test = trained
        ranks = evaluate_ranks(model, test[:15], train)
        n_entities = len(model._index.entities)
        assert all(1 <= r <= n_entities for r in ranks)
        assert 0.0 <= mrr_score(ranks) <= 1.0
        assert 0.0 <= hits_at_n_score(ranks, 10) <= 1.0
        assert mr_score(ranks) >= 1.0
        # trained model beats random expectation
        assert mr_score(ranks) < n_entities * 0.75

    def test_unseen_entity_raises(self, trained):
        model, _, _ = trained
        with pytest.raises(KeyError):
            model.score([("ghost", "r0", "e0")])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TransE().score([("a", "b", "c")])
