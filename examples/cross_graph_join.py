"""Joining two knowledge graphs (workload queries Q4 and Q11).

RDF's global URIs make cross-graph joins natural: the DBpedia-like and
YAGO-like graphs share actor URIs, so an RDFFrames join across the two
KnowledgeGraph handles compiles to a single SPARQL query with GRAPH-scoped
patterns.

Run:  python examples/cross_graph_join.py
"""

from repro import EngineClient, Engine, InnerJoin, KnowledgeGraph, OuterJoin
from repro.data import DBPEDIA_URI, YAGO_URI, build_dataset

client = EngineClient(Engine(build_dataset(scale=0.2)))

dbpedia = KnowledgeGraph(graph_uri=DBPEDIA_URI)
yago = KnowledgeGraph(graph_uri=YAGO_URI)

# Q4: American actors present in BOTH graphs (inner join).
american = dbpedia.entities("dbpo:Actor", "actor") \
    .expand("actor", [("dbpp:birthPlace", "country")]) \
    .filter({"country": ["=dbpr:United_States"]})
in_yago = yago.entities("yago:Actor", "actor")
both = american.join(in_yago, "actor", InnerJoin)

print("Q4 — American actors in both graphs")
print(both.to_sparql())
df = both.execute(client)
print("-> %d actors\n" % len(df.select(["actor"]).distinct()))

# Q11: actors in EITHER graph (full outer join -> UNION of OPTIONALs).
either = dbpedia.entities("dbpo:Actor", "actor") \
    .join(in_yago, "actor", OuterJoin)
print("Q11 — actors in either graph (full outer join)")
df_either = either.execute(client)
print("-> %d rows" % len(df_either))

# The full outer join is strictly larger than the inner join.
assert len(df_either) >= len(df)
print("\nInner join %d <= full outer join %d, as expected."
      % (len(df), len(df_either)))
