"""Quickstart: from a knowledge graph to a dataframe in a few lines.

Builds a small DBpedia-like synthetic graph, serves it from an in-process
SPARQL engine, and runs the paper's motivating example (Listing 1):
prolific American actors, the movies they starred in, and their Academy
Awards (when available).

Run:  python examples/quickstart.py
"""

from repro import EngineClient, Engine, INCOMING, KnowledgeGraph, OPTIONAL
from repro.data import DBPEDIA_URI, generate_dbpedia

# ----------------------------------------------------------------------
# 1. Stand up the "RDF engine".  With network access you would instead
#    point an HttpClient at a live SPARQL endpoint; here the engine is the
#    in-process substitute for Virtuoso, loaded with synthetic DBpedia.
# ----------------------------------------------------------------------
graph_data = generate_dbpedia(scale=0.2)
client = EngineClient(Engine(graph_data))
print("Loaded %d triples into the engine.\n" % len(graph_data))

# ----------------------------------------------------------------------
# 2. Describe the dataframe with RDFFrames operators (paper Listing 1).
#    Nothing is executed yet: calls are recorded lazily.
# ----------------------------------------------------------------------
graph = KnowledgeGraph(graph_uri=DBPEDIA_URI)

movies = graph.feature_domain_range("dbpp:starring", "movie", "actor")
american = movies.expand("actor", [("dbpp:birthPlace", "country")]) \
    .filter({"country": ["=dbpr:United_States"]})
prolific = american.group_by(["actor"]) \
    .count("movie", "movie_count") \
    .filter({"movie_count": [">=10"]})
result = prolific.expand("actor", [("dbpp:starring", "movie", INCOMING),
                                   ("dbpo:genre", "genre", OPTIONAL)])

# ----------------------------------------------------------------------
# 3. Inspect the single SPARQL query RDFFrames generates.
# ----------------------------------------------------------------------
print("Generated SPARQL:\n")
print(result.to_sparql())

# ----------------------------------------------------------------------
# 4. Execute and receive a dataframe.
# ----------------------------------------------------------------------
df = result.execute(client)
print("\nResult: %d rows" % len(df))
print(df.head(10).to_string())

# Bonus: exploration operators for unfamiliar graphs.
print("\nClass distribution of the graph:")
print(graph.classes_and_freq().execute(client)
      .sort("frequency", ascending=False).to_string())
