"""Case study 3 (paper Section 6.1.3): knowledge graph embeddings.

One RDFFrames line (paper Listing 7) filters the DBLP-like graph down to
entity-to-entity triples; a TransE model is then trained for link
prediction and evaluated with the standard filtered-rank protocol — the
paper's Appendix A.3 pipeline, with this repo's embedding stack standing
in for ampligraph.

Run:  python examples/kg_embedding.py
"""

from repro import EngineClient, Engine
from repro.data import generate_dblp
from repro.ml import (TransE, evaluate_ranks, hits_at_n_score, mr_score,
                      mrr_score, train_test_split_no_unseen)
from repro.workload import kg_embedding_frame

# ----------------------------------------------------------------------
# Data preparation: ONE RDFFrames line.
# ----------------------------------------------------------------------
engine = Engine(generate_dblp(scale=0.15))
client = EngineClient(engine)

frame = kg_embedding_frame()
print("Generated SPARQL:\n%s" % frame.to_sparql())

df = frame.execute(client)
triples = [(str(s), str(p), str(o)) for s, p, o in df.to_records()]
print("Entity-to-entity triples: %d" % len(triples))

# ----------------------------------------------------------------------
# Train/test split with no unseen entities, then TransE.
# ----------------------------------------------------------------------
train, test = train_test_split_no_unseen(triples,
                                         test_size=min(200, len(triples) // 10))
print("Train: %d   Test: %d" % (len(train), len(test)))

model = TransE(k=24, epochs=25, seed=0)
model.fit(train + test)
print("Training loss: %.3f -> %.3f"
      % (model.loss_history[0], model.loss_history[-1]))

# ----------------------------------------------------------------------
# Filtered-rank evaluation (MR / MRR / Hits@10).
# ----------------------------------------------------------------------
sample = test[:60]
ranks = evaluate_ranks(model, sample, filter_triples=train)
print("MR      %.1f" % mr_score(ranks))
print("MRR     %.3f" % mrr_score(ranks))
print("Hits@10 %.3f" % hits_at_n_score(ranks, 10))
print("(random baseline MR would be ~%d)"
      % (len(model._index.entities) // 2))
