"""Case study 1 (paper Section 6.1.1): movie genre classification.

Extracts a movie dataframe from the DBpedia-like graph with RDFFrames
(paper Listing 3), then trains a genre classifier on TF-IDF features of
the movie metadata — the full pipeline of the paper's Appendix A.1,
using this repo's ML stack in place of scikit-learn/nltk.

Run:  python examples/movie_genre_classification.py
"""

import numpy as np

from repro import EngineClient, Engine
from repro.data import generate_dbpedia
from repro.ml import LogisticRegression, TfidfVectorizer, cross_val_score
from repro.workload import movie_genre_frame

# ----------------------------------------------------------------------
# Data preparation with RDFFrames (the part the paper measures).
# ----------------------------------------------------------------------
engine = Engine(generate_dbpedia(scale=0.4))
client = EngineClient(engine)

frame = movie_genre_frame()
print("RDFFrames pipeline: %d operators -> one SPARQL query"
      % len(frame.operators))
df = frame.execute(client)
print("Extracted dataframe: %d rows x %d columns" % (len(df),
                                                     len(df.columns)))

# ----------------------------------------------------------------------
# Classic ML: predict the genre from movie name + subject.
# Rows with a known genre are the labeled training data.
# ----------------------------------------------------------------------
labeled = df.dropna(["genre"]).distinct()
texts = ["%s %s %s" % (row["movie_name"], row["subject"], row["movie_country"])
         for row in labeled.iter_dicts()]
labels = [str(genre).rsplit("/", 1)[-1] for genre in labeled.column("genre")]
print("Labeled examples: %d (genres: %s)" % (len(labels),
                                             sorted(set(labels))[:5]))

vectorizer = TfidfVectorizer(max_features=500)
features = vectorizer.fit_transform(texts)

scores = cross_val_score(lambda: LogisticRegression(n_iterations=150),
                         features, labels, cv=4)
print("4-fold cross-validated accuracy: %.3f (+/- %.3f)"
      % (float(np.mean(scores)), float(np.std(scores))))

majority = max(np.bincount(np.unique(labels, return_inverse=True)[1])) / len(labels)
print("Majority-class baseline:          %.3f" % majority)
