"""Case study 2 (paper Section 6.1.2): topic modeling on DBLP.

Uses RDFFrames (paper Listing 5) to pull the titles of recent papers by
prolific SIGMOD/VLDB authors out of the DBLP-like graph, then factorizes
the TF-IDF matrix with truncated SVD to surface the active research topics
(the paper's Appendix A.2 pipeline).

The synthetic DBLP titles are drawn from six latent topic vocabularies, so
the SVD should recover recognizable clusters (query processing, ML,
graphs, streams, storage, privacy).

Run:  python examples/topic_modeling.py
"""

from repro import EngineClient, Engine
from repro.data import TOPICS, generate_dblp
from repro.ml import TfidfVectorizer, TruncatedSVD, top_terms_per_topic
from repro.workload import topic_modeling_frame

# ----------------------------------------------------------------------
# Data preparation with RDFFrames.
# ----------------------------------------------------------------------
engine = Engine(generate_dblp(scale=0.4))
client = EngineClient(engine)

frame = topic_modeling_frame()
print("Generated SPARQL:\n")
print(frame.to_sparql())

titles_df = frame.execute(client)
titles = [str(t) for t in titles_df.column("title")]
print("\nExtracted %d paper titles." % len(titles))

# ----------------------------------------------------------------------
# Topic modeling: TF-IDF + truncated SVD.
# ----------------------------------------------------------------------
vectorizer = TfidfVectorizer(max_features=400, max_df=0.5)
matrix = vectorizer.fit_transform(titles)
svd = TruncatedSVD(n_components=len(TOPICS)).fit(matrix)

print("\nDiscovered topics (top terms per SVD component):")
names = vectorizer.get_feature_names()
for index, topic in enumerate(top_terms_per_topic(svd, names, n_terms=6)):
    terms = " ".join(term for term, _ in topic)
    print("  Topic %d: %s" % (index, terms))

print("\nGround-truth vocabularies used by the generator:")
for name in sorted(TOPICS):
    print("  %-8s %s" % (name, " ".join(TOPICS[name][:6])))
