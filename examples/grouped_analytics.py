"""Grouped analytics: aggregations pushed down onto the streaming plane.

The paper's case studies all end the same way: a navigational pipeline
collapsed by ``group_by().count()/avg()``.  This example runs those
shapes against the synthetic DBpedia graph and shows what the engine
does with them — aggregate plans route through the streaming executor,
where single-pattern counts are answered straight from the graph indexes
(no solution rows at all) and ``sort().head()`` over a grouped frame
becomes a bounded heap over the group stream (top-k groups, no full
sort).

Run:  PYTHONPATH=src python examples/grouped_analytics.py
"""

from repro import EngineClient, Engine, KnowledgeGraph
from repro.data import DBPEDIA_URI, generate_dbpedia

# ----------------------------------------------------------------------
# 1. Stand up the engine on synthetic DBpedia.
# ----------------------------------------------------------------------
graph_data = generate_dbpedia(scale=0.2)
engine = Engine(graph_data)
client = EngineClient(engine)
print("Loaded %d triples into the engine.\n" % len(graph_data))

graph = KnowledgeGraph(graph_uri=DBPEDIA_URI)
movies = graph.feature_domain_range("dbpp:starring", "movie", "actor")

# ----------------------------------------------------------------------
# 2. Top-k groups: the most prolific actors by distinct movie count,
#    ORDER BY the aggregate, LIMIT 10.  One pushed-down query.
# ----------------------------------------------------------------------
prolific = (movies.group_by(["actor"])
            .count("movie", "movie_count", unique=True)
            .sort({"movie_count": "desc"})
            .head(10))
print("Generated SPARQL:\n")
print(prolific.to_sparql())

df = prolific.execute(client)
stats = engine.last_stats
print("\nTop 10 actors by movie count:")
print(df.to_string())
print("\nplan streaming: %s" % engine.last_plan.streaming)
print("groups built: %d, accumulator rows folded: %d, rows pulled: %d"
      % (stats.groups_built, stats.accumulator_rows, stats.rows_pulled))
print("(accumulator_rows == 0 means the single-pattern COUNT was "
      "answered straight from the graph indexes)")

# ----------------------------------------------------------------------
# 3. A general aggregation: average film runtime per starring actor —
#    a join folded into per-group accumulators as it streams.
# ----------------------------------------------------------------------
runtimes = (movies.expand("movie", [("dbpo:runtime", "runtime")])
            .group_by(["actor"])
            .avg("runtime", "avg_runtime")
            .sort({"avg_runtime": "desc"})
            .head(5))
df = runtimes.execute(client)
stats = engine.last_stats
print("\nTop 5 actors by average film runtime:")
print(df.to_string())
print("\ngroups built: %d, accumulator rows folded: %d"
      % (stats.groups_built, stats.accumulator_rows))

# ----------------------------------------------------------------------
# 4. Exploration operators ride the same path: class distribution.
# ----------------------------------------------------------------------
print("\nClass distribution of the graph:")
print(graph.classes_and_freq().execute(client)
      .sort("frequency", ascending=False).head(8).to_string())
